"""Cross-transport equivalence: SyncTransport and SimTransport converge.

The broker protocol is deterministic in per-link arrival order.  When a
scripted ``workloads.dynamics`` scenario runs in lockstep — every action
fully propagated before the next fires — the transport's timing model can
only reorder messages *within* one action's propagation wave, which the
acyclic overlay makes irrelevant: each broker sees the wave through a single
upstream link.  So after each scripted scenario the synchronous inline
transport and the latency/queueing simulation must leave byte-identical
normalised per-broker routing/forwarded/suppressed state.
"""

from __future__ import annotations

import pytest

from repro.pubsub.network import BrokerNetwork, chain_topology, star_topology, tree_topology
from repro.sim.latency import UniformJitterLatency
from repro.sim.transport import SimTransport
from repro.workloads.dynamics import (
    flash_crowd_script,
    rolling_failures_script,
    run_scripted_lockstep,
    subscription_churn_script,
)
from repro.workloads.scenarios import sensor_network_scenario, stock_market_scenario

NUM_BROKERS = 7
BROKER_IDS = list(range(NUM_BROKERS))

TOPOLOGIES = {
    "tree": tree_topology,
    "chain": chain_topology,
    "star": star_topology,
}


def small_scenario():
    return stock_market_scenario(num_subscriptions=40, num_events=16, order=8, seed=7)


def make_network(scenario, topology, transport_kind):
    transport = (
        SimTransport(UniformJitterLatency(0.05, 0.2), seed=5)
        if transport_kind == "sim"
        else None
    )
    return BrokerNetwork.from_topology(
        scenario.schema,
        TOPOLOGIES[topology](NUM_BROKERS),
        covering="approximate",
        epsilon=0.2,
        cube_budget=5_000,
        transport=transport,
    )


def lockstep_state(scenario, topology, script, transport_kind):
    network = make_network(scenario, topology, transport_kind)
    run_scripted_lockstep(network, script)
    return network.routing_state()


class TestCrossTransportEquivalence:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_churn_storm_converges_identically(self, topology):
        scenario = small_scenario()
        script = subscription_churn_script(
            scenario, BROKER_IDS, join_broker=NUM_BROKERS, seed=3
        )
        sync_state = lockstep_state(scenario, topology, script, "sync")
        sim_state = lockstep_state(scenario, topology, script, "sim")
        assert sync_state == sim_state

    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_flash_crowd_converges_identically(self, topology):
        scenario = sensor_network_scenario(
            num_subscriptions=30, num_events=12, order=8, seed=11
        )
        script = flash_crowd_script(scenario, BROKER_IDS, seed=4)
        sync_state = lockstep_state(scenario, topology, script, "sync")
        sim_state = lockstep_state(scenario, topology, script, "sim")
        assert sync_state == sim_state

    def test_rolling_failures_equivalent_deliveries(self):
        """Crash recovery converges to *delivery-equivalent*, sound state.

        Strict state identity cannot hold across transports here: during
        ``recover_broker`` the synchronous transport delivers the neighbour
        promotions (triggered by the pre-reset flush) inline, before the
        recovering broker wipes its state, while the simulated transport
        delivers them after — so the recovering broker legitimately sees a
        different arrival order and may forward/suppress differently (both
        soundly).  What must agree is behaviour: after the scenario, every
        probe event reaches exactly the oracle set on both transports.
        """
        scenario = small_scenario()
        script = rolling_failures_script(scenario, BROKER_IDS, crash_ids=[2, 4], seed=6)
        import random

        from repro.pubsub.subscription import Event

        rng = random.Random(17)
        probes = [
            (
                Event(
                    scenario.schema,
                    {
                        name: rng.uniform(attr.low, attr.high)
                        for name, attr in zip(
                            scenario.schema.names,
                            (scenario.schema.attribute(n) for n in scenario.schema.names),
                        )
                    },
                    event_id=f"probe-{i}",
                ),
                rng.randrange(NUM_BROKERS),
            )
            for i in range(12)
        ]
        results = {}
        for kind in ("sync", "sim"):
            network = make_network(scenario, "tree", kind)
            run_scripted_lockstep(network, script)
            delivered = []
            for event, origin in probes:
                missed, extra = network.publish_and_audit(origin, event)
                assert missed == set() and extra == set(), (kind, event.event_id)
                delivered.append(frozenset(network.expected_recipients(event, origin=origin)))
            results[kind] = delivered
        assert results["sync"] == results["sim"]

    def test_lockstep_runner_counts_executed_actions(self):
        scenario = small_scenario()
        script = subscription_churn_script(scenario, BROKER_IDS, seed=3)
        network = make_network(scenario, "tree", "sync")
        executed = run_scripted_lockstep(network, script)
        assert executed == len(script)
