"""The paper's core contribution: ε-approximate point dominance and subscription covering."""

from .approx_dominance import (
    ApproximateDominanceIndex,
    DominanceQueryResult,
    TerminationReason,
)
from .bounds import (
    adversarial_lengths,
    adversarial_rectangle,
    lemma32_min_volume_fraction,
    lemma37_cube_bound,
    theorem31_run_bound,
    theorem41_lower_bound,
)
from .covering import ApproximateCoveringDetector, CoveringResult
from .merging import GreedyMerger, MergedSubscription, MergeReport, bounding_ranges, merge_precision
from .decomposition import (
    LevelClass,
    count_cubes_extremal,
    cubes_in_class,
    cumulative_volume_at_level,
    decompose_rectangle,
    greedy_decomposition,
    level_census,
    truncation_bits,
)

__all__ = [
    "ApproximateDominanceIndex",
    "DominanceQueryResult",
    "TerminationReason",
    "adversarial_lengths",
    "adversarial_rectangle",
    "lemma32_min_volume_fraction",
    "lemma37_cube_bound",
    "theorem31_run_bound",
    "theorem41_lower_bound",
    "ApproximateCoveringDetector",
    "CoveringResult",
    "GreedyMerger",
    "MergedSubscription",
    "MergeReport",
    "bounding_ranges",
    "merge_precision",
    "LevelClass",
    "count_cubes_extremal",
    "cubes_in_class",
    "cumulative_volume_at_level",
    "decompose_rectangle",
    "greedy_decomposition",
    "level_census",
    "truncation_bits",
]
