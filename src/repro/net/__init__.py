"""Networked broker deployment: wire protocol, servers, clients, transport.

The third implementation of the :class:`~repro.sim.transport.Transport` seam:
:class:`NetTransport` runs each broker behind an asyncio TCP server speaking
a versioned, length-prefixed JSON protocol (:mod:`repro.net.protocol`), with
a sync client library (:class:`NetClient`) and a ``/metrics`` endpoint per
broker serving the observability layer's Prometheus exposition.  The
scripted-lockstep suite pins sync ≡ sim ≡ net routing state, so the
networked deployment is provably the same routing machine as the in-process
transports.
"""

from .client import NetClient, NetError, NetTimeout, fetch_metrics
from .net_transport import NetTransport, serve_network
from .protocol import (
    MAX_FRAME_SIZE,
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    VersionMismatch,
    encode_frame,
)
from .server import BrokerServer

__all__ = [
    "NetClient",
    "NetError",
    "NetTimeout",
    "NetTransport",
    "BrokerServer",
    "FrameDecoder",
    "ProtocolError",
    "VersionMismatch",
    "PROTOCOL_VERSION",
    "MAX_FRAME_SIZE",
    "encode_frame",
    "fetch_metrics",
    "serve_network",
]
