"""Wire-protocol codec tests: framing, strict rejection, payload round-trips."""

from __future__ import annotations

import json
import struct

import pytest

from repro.net.protocol import (
    MAX_FRAME_SIZE,
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    VersionMismatch,
    check_hello,
    decode_event,
    decode_payload,
    decode_subscription,
    encode_event,
    encode_frame,
    encode_payload,
    encode_subscription,
    hello_frame,
    message_frame,
)
from repro.pubsub.schema import Attribute, AttributeSchema
from repro.pubsub.subscription import Event, Subscription


@pytest.fixture
def schema():
    return AttributeSchema(
        [Attribute("x", 0.0, 100.0), Attribute("y", -50.0, 50.0)], order=8
    )


class TestFraming:
    def test_round_trip_single_frame(self):
        frame = {"type": "ping", "seq": 3}
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(frame)) == [frame]
        assert decoder.buffered == 0

    def test_byte_by_byte_feed(self):
        frame = {"type": "hello", "version": PROTOCOL_VERSION, "role": "client"}
        data = encode_frame(frame)
        decoder = FrameDecoder()
        collected = []
        for i in range(len(data)):
            collected.extend(decoder.feed(data[i : i + 1]))
        assert collected == [frame]

    def test_several_frames_in_one_chunk(self):
        frames = [{"type": "ping", "seq": i} for i in range(5)]
        blob = b"".join(encode_frame(frame) for frame in frames)
        assert FrameDecoder().feed(blob) == frames

    def test_truncated_frame_detected_at_eof(self):
        data = encode_frame({"type": "ping"})
        decoder = FrameDecoder()
        assert decoder.feed(data[:-2]) == []
        with pytest.raises(ProtocolError, match="mid-frame"):
            decoder.eof()

    def test_eof_on_frame_boundary_is_clean(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame({"type": "ping"}))
        decoder.eof()  # no trailing bytes: must not raise

    def test_oversized_length_prefix_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="invalid frame length"):
            decoder.feed(struct.pack(">I", MAX_FRAME_SIZE + 1))

    def test_zero_length_prefix_rejected(self):
        with pytest.raises(ProtocolError, match="invalid frame length"):
            FrameDecoder().feed(struct.pack(">I", 0))

    def test_non_json_body_rejected(self):
        body = b"\xff\xfenot json"
        with pytest.raises(ProtocolError, match="not valid JSON"):
            FrameDecoder().feed(struct.pack(">I", len(body)) + body)

    def test_non_object_body_rejected(self):
        body = json.dumps([1, 2, 3]).encode()
        with pytest.raises(ProtocolError, match="JSON object"):
            FrameDecoder().feed(struct.pack(">I", len(body)) + body)

    def test_missing_type_rejected(self):
        body = json.dumps({"seq": 1}).encode()
        with pytest.raises(ProtocolError, match="'type'"):
            FrameDecoder().feed(struct.pack(">I", len(body)) + body)

    def test_encode_requires_type(self):
        with pytest.raises(ProtocolError, match="'type'"):
            encode_frame({"seq": 1})

    def test_encode_rejects_oversized_frame(self):
        with pytest.raises(ProtocolError, match="MAX_FRAME_SIZE"):
            encode_frame({"type": "blob", "data": "x" * (MAX_FRAME_SIZE + 1)})


class TestHello:
    def test_round_trip(self):
        frame = hello_frame("link", "broker-3")
        assert check_hello(frame) is frame

    def test_version_mismatch_raises(self):
        frame = hello_frame("client", "c")
        frame["version"] = PROTOCOL_VERSION + 1
        with pytest.raises(VersionMismatch):
            check_hello(frame)

    def test_non_hello_frame_rejected(self):
        with pytest.raises(ProtocolError, match="expected hello"):
            check_hello({"type": "ping", "version": PROTOCOL_VERSION})

    def test_unknown_role_rejected(self):
        with pytest.raises(ProtocolError, match="role"):
            hello_frame("admin", "c")
        frame = hello_frame("client", "c")
        frame["role"] = "admin"
        with pytest.raises(ProtocolError, match="role"):
            check_hello(frame)


class TestPayloadCodecs:
    def test_subscription_round_trip_requantises(self, schema):
        original = Subscription(
            schema, {"x": (10.5, 42.25), "y": (-3.0, 7.0)}, sub_id="s1"
        )
        wire = json.loads(json.dumps(encode_subscription(original)))
        decoded = decode_subscription(wire, schema)
        assert decoded.sub_id == original.sub_id
        assert decoded.constraints == original.constraints
        # The receiver derives the quantised ranges from its own schema; both
        # sides must land on the same grid (floats round-trip through JSON).
        assert decoded.ranges == original.ranges

    def test_event_round_trip(self, schema):
        original = Event(schema, {"x": 33.3, "y": -11.5}, event_id="e9")
        wire = json.loads(json.dumps(encode_event(original)))
        decoded = decode_event(wire, schema)
        assert decoded.event_id == original.event_id
        assert decoded.values == original.values

    def test_unsubscription_payload_is_bare_id(self, schema):
        assert encode_payload("unsubscription", "s1") == "s1"
        assert decode_payload("unsubscription", "s1", schema) == "s1"

    def test_non_json_safe_ids_rejected(self, schema):
        with pytest.raises(ProtocolError, match="JSON-safe"):
            encode_subscription(
                Subscription(schema, {"x": (0.0, 1.0)}, sub_id=("tuple", 1))
            )
        with pytest.raises(ProtocolError, match="JSON-safe"):
            encode_payload("unsubscription", ("tuple", 1))

    def test_wrong_payload_type_rejected(self, schema):
        with pytest.raises(ProtocolError):
            encode_payload("subscription", "not-a-subscription")
        with pytest.raises(ProtocolError):
            encode_payload("event", 42)
        with pytest.raises(ProtocolError, match="unknown message kind"):
            encode_payload("gossip", None)

    def test_malformed_payload_objects_rejected(self, schema):
        with pytest.raises(ProtocolError, match="malformed subscription"):
            decode_subscription({"sub_id": "s"}, schema)
        with pytest.raises(ProtocolError, match="malformed event"):
            decode_event({"event_id": "e", "values": {"x": "NaN-ish?"}}, schema)
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_payload("event", [1, 2], schema)

    def test_message_frame_round_trips_subscription(self, schema):
        subscription = Subscription(schema, {"x": (1.0, 2.0)}, sub_id=7)
        frame = message_frame(
            "subscription", 0, 1,
            hops=1, sent_at=0.5, payload=encode_payload("subscription", subscription),
        )
        wire = FrameDecoder().feed(encode_frame(frame))[0]
        decoded = decode_payload("subscription", wire["payload"], schema)
        assert decoded.sub_id == 7
        assert decoded.ranges == subscription.ranges
