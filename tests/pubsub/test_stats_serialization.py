"""Drift guards: stats serialization must track the dataclass fields.

``BrokerStats.as_dict`` is field-driven (``dataclasses.asdict``) and
``NetworkStats.as_dict`` builds the whole-network JSON snapshot by hand —
both are pinned here so a newly added counter can never be silently dropped
from reports, benchmarks or the metrics exposition.
"""

from __future__ import annotations

import json
from dataclasses import fields

from repro.pubsub.network import BrokerNetwork, tree_topology
from repro.pubsub.schema import Attribute, AttributeSchema
from repro.pubsub.stats import BrokerStats, NetworkStats
from repro.pubsub.subscription import Event, Subscription
from repro.sim.transport import SimTransport, TransportStats


def _schema():
    return AttributeSchema(
        [Attribute("x", 0.0, 100.0), Attribute("y", 0.0, 100.0)], order=5
    )


class TestBrokerStatsDriftGuard:
    def test_as_dict_keys_are_exactly_the_fields(self):
        stats = BrokerStats()
        assert set(stats.as_dict()) == {f.name for f in fields(BrokerStats)}

    def test_as_dict_reflects_values(self):
        stats = BrokerStats(events_received=3, subscriptions_suppressed=2)
        d = stats.as_dict()
        assert d["events_received"] == 3
        assert d["subscriptions_suppressed"] == 2

    def test_summary_rows_carry_every_counter(self):
        net_stats = NetworkStats(per_broker={0: BrokerStats(events_received=1)})
        (row,) = net_stats.summary_rows()
        assert set(row) == {"broker"} | {f.name for f in fields(BrokerStats)}


class TestNetworkStatsDriftGuard:
    def test_as_dict_covers_every_field(self):
        # Every NetworkStats field must surface in as_dict (the transport
        # field flattens into the "transport" summary sub-dict).
        stats = NetworkStats(transport=TransportStats())
        d = stats.as_dict()
        for f in fields(NetworkStats):
            assert f.name in d, f"NetworkStats.as_dict dropped field {f.name!r}"

    def test_as_dict_is_json_serializable_from_live_network(self):
        schema = _schema()
        network = BrokerNetwork.from_topology(
            schema, tree_topology(5), transport=SimTransport(seed=3)
        )
        network.subscribe(
            0, "alice", Subscription(schema, {"x": (0.0, 60.0)}, sub_id="a")
        )
        network.flush()
        network.publish_and_audit(4, Event(schema, {"x": 30.0, "y": 1.0}))
        d = network.collect_stats().as_dict()
        parsed = json.loads(json.dumps(d, sort_keys=True))
        assert parsed["events_delivered"] == 1
        assert parsed["events_missed"] == 0
        assert parsed["per_broker"]["0"]["events_delivered_locally"] == 1
        assert parsed["transport"]["messages_delivered"] > 0
        assert all(isinstance(k, str) for k in parsed["per_broker"])

    def test_running_audit_tallies_feed_collect_stats(self):
        schema = _schema()
        network = BrokerNetwork.from_topology(schema, tree_topology(3))
        network.subscribe(
            2, "bob", Subscription(schema, {"x": (0.0, 100.0)}, sub_id="b")
        )
        for _ in range(3):
            network.publish_and_audit(0, Event(schema, {"x": 50.0, "y": 1.0}))
        stats = network.collect_stats()
        assert stats.events_delivered == 3
        assert stats.events_missed == 0
        assert stats.duplicate_deliveries == 0
