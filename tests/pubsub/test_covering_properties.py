"""Property-based tests of the covering layer and the subscription lifecycle.

Two families of randomized invariants:

* **Soundness** — on random rectangle workloads, no covering strategy the
  broker can be configured with (``exact`` or ``approximate``; the
  probabilistic baseline is unsound by design and excluded) ever reports a
  witness that does not geometrically cover the query.  The oracle is the
  exact per-attribute containment check (``ranges_cover``) — the same
  predicate the linear-scan detector uses.  The profile-driven fast path is
  additionally pinned to return *exactly* the classic search's answer.

* **Lifecycle vs flat oracle** — after any random subscribe/withdraw
  interleaving on a broker tree, each published event must reach exactly the
  clients whose live subscription matches it, as computed by a flat
  single-broker oracle that knows nothing about covering, suppression or
  promotion.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.covering import CoveringProfiler
from repro.geometry.transform import ranges_cover
from repro.pubsub.network import BrokerNetwork, tree_topology
from repro.pubsub.routing_table import make_covering_strategy
from repro.pubsub.schema import Attribute, AttributeSchema
from repro.pubsub.subscription import Event, Subscription

ORDER = 6
MAX_CELL = (1 << ORDER) - 1
NUM_BROKERS = 5

SCHEMA = AttributeSchema(
    [Attribute("x", 0.0, float(MAX_CELL)), Attribute("y", 0.0, float(MAX_CELL))],
    order=ORDER,
)


@st.composite
def quantised_rect(draw):
    """One subscription rectangle as quantised per-attribute cell ranges."""
    ranges = []
    for _ in range(SCHEMA.num_attributes):
        lo = draw(st.integers(min_value=0, max_value=MAX_CELL))
        hi = draw(st.integers(min_value=lo, max_value=MAX_CELL))
        ranges.append((lo, hi))
    return tuple(ranges)


def rect_subscription(ranges, sub_id):
    """Build a Subscription whose quantised ranges are exactly ``ranges``."""
    constraints = {
        name: (
            SCHEMA.dequantize_value(name, lo),
            SCHEMA.dequantize_value(name, hi),
        )
        for name, (lo, hi) in zip(SCHEMA.names, ranges)
    }
    subscription = Subscription(SCHEMA, constraints, sub_id=sub_id)
    assert subscription.ranges == ranges  # dequantize/quantize round-trip
    return subscription


class TestCoveringSoundness:
    @settings(deadline=None)
    @given(rects=st.lists(quantised_rect(), min_size=1, max_size=20), epsilon=st.sampled_from([0.0, 0.05, 0.3]))
    def test_no_unsound_witness_exact_and_approximate(self, rects, epsilon):
        """Any witness a strategy returns really covers the query rectangle."""
        for kind in ("exact", "approximate"):
            strategy = make_covering_strategy(
                kind, SCHEMA, epsilon=epsilon, cube_budget=5_000
            )
            stored = {}
            for i, ranges in enumerate(rects):
                witness = strategy.find_covering(ranges)
                if witness is not None:
                    assert witness in stored
                    assert ranges_cover(stored[witness], ranges), (
                        f"{kind} returned witness {witness} = {stored[witness]} "
                        f"which does not cover {ranges}"
                    )
                stored[f"s{i}"] = ranges
                strategy.add(f"s{i}", ranges)

    @settings(deadline=None)
    @given(rects=st.lists(quantised_rect(), min_size=2, max_size=15))
    def test_profile_path_replays_classic_search(self, rects):
        """find_covering_profile is a pure amortisation: same witness-or-None."""
        profiler = CoveringProfiler(
            SCHEMA.num_attributes, SCHEMA.order, epsilon=0.05, cube_budget=5_000
        )
        classic = make_covering_strategy("approximate", SCHEMA, epsilon=0.05, cube_budget=5_000)
        fast = make_covering_strategy("approximate", SCHEMA, epsilon=0.05, cube_budget=5_000)
        for i, ranges in enumerate(rects[:-1]):
            profile = profiler.profile(ranges)
            classic.add(f"s{i}", ranges)
            fast.add_profile(f"s{i}", _wrap(profile, ranges))
        query = rects[-1]
        profile = profiler.profile(query)
        assert classic.find_covering(query) == fast.find_covering_profile(
            _wrap(profile, query)
        )

    @settings(deadline=None)
    @given(rects=st.lists(quantised_rect(), min_size=1, max_size=12))
    def test_exact_strategy_complete_against_oracle(self, rects):
        """The exact strategy finds a cover whenever the oracle says one exists."""
        strategy = make_covering_strategy("exact", SCHEMA)
        stored = {}
        for i, ranges in enumerate(rects):
            witness = strategy.find_covering(ranges)
            oracle_has_cover = any(
                ranges_cover(other, ranges) for other in stored.values()
            )
            assert (witness is not None) == oracle_has_cover
            stored[f"s{i}"] = ranges
            strategy.add(f"s{i}", ranges)


def _wrap(covering_profile, ranges):
    """Minimal SubscriptionProfile stand-in for strategy-level tests."""
    from repro.pubsub.subscription_store import SubscriptionProfile

    return SubscriptionProfile(subscription=None, ranges=tuple(ranges), covering=covering_profile)


@st.composite
def lifecycle_script(draw):
    """A random subscribe/withdraw interleaving plus probe events."""
    num_subs = draw(st.integers(min_value=2, max_value=14))
    subs = []
    for i in range(num_subs):
        ranges = draw(quantised_rect())
        broker = draw(st.integers(min_value=0, max_value=NUM_BROKERS - 1))
        subs.append((i, ranges, broker))
    # Interleave withdrawals: each withdraws an earlier subscription index.
    withdrawals = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_subs - 1),
            max_size=num_subs,
            unique=True,
        )
    )
    # Positions after which each withdrawal fires (so they interleave).
    ops = [("sub", s) for s in subs]
    for w in withdrawals:
        position = draw(st.integers(min_value=w + 1, max_value=num_subs))
        ops.insert(min(position + len(ops) - num_subs, len(ops)), ("unsub", w))
    events = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=MAX_CELL),
                st.integers(min_value=0, max_value=MAX_CELL),
                st.integers(min_value=0, max_value=NUM_BROKERS - 1),
            ),
            min_size=1,
            max_size=6,
        )
    )
    return ops, events


class TestLifecycleDeliveryOracle:
    @settings(deadline=None)
    @given(script=lifecycle_script(), covering=st.sampled_from(["exact", "approximate"]))
    def test_delivery_matches_flat_oracle_after_interleaving(self, script, covering):
        """After any subscribe/withdraw interleaving, deliveries == flat oracle."""
        ops, events = script
        network = BrokerNetwork.from_topology(
            SCHEMA,
            tree_topology(NUM_BROKERS),
            covering=covering,
            epsilon=0.2,
            cube_budget=5_000,
        )
        live = {}
        for op, payload in ops:
            if op == "sub":
                index, ranges, broker = payload
                subscription = rect_subscription(ranges, f"s{index}")
                network.subscribe(broker, f"c{index}", subscription)
                live[f"c{index}"] = subscription
            else:
                live.pop(f"c{payload}", None)
                network.unsubscribe(f"c{payload}", f"s{payload}")
        for x, y, origin in events:
            event = Event(
                SCHEMA,
                {
                    "x": SCHEMA.dequantize_value("x", x),
                    "y": SCHEMA.dequantize_value("y", y),
                },
            )
            delivered = network.publish(origin, event)
            oracle = {
                client
                for client, subscription in live.items()
                if subscription.matches(event)
            }
            assert delivered == oracle
