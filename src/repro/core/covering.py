"""Approximate subscription covering: the subscription-facing API of the paper.

This module ties together the Edelsbrunner–Overmars transform and the
ε-approximate dominance index: subscriptions (conjunctions of per-attribute
ranges) are stored as dominance points in a ``2β``-dimensional universe, and
``find_covering`` answers "is this new subscription covered by one that is
already stored?" by issuing an ε-approximate dominance query anchored at the
new subscription's point.

Guarantees mirror Problem 2 of the paper:

* **Soundness** — any subscription returned really does cover the query
  (dominance in the transformed space is exactly covering, and witnesses come
  from inside the dominance region).
* **Approximate completeness** — at least a ``(1 − ε)`` volume fraction of the
  region where covering subscriptions can live is searched, so a covering
  subscription is missed only when every one of them hides in the remaining
  sliver.  Missed covers never break a publish/subscribe system; they only
  cost an extra forwarded subscription.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..geometry.transform import DominanceTransform, Range
from ..index.backends import ordered_map_backend_name
from ..index.config import IndexConfig, resolve_index_config
from ..sfc.factory import make_curve
from .approx_dominance import (
    ApproximateDominanceIndex,
    DominanceQueryResult,
    DominancePlan,
    build_dominance_plan,
)

__all__ = [
    "ApproximateCoveringDetector",
    "CoveringProfile",
    "CoveringProfiler",
    "CoveringResult",
]


@dataclass
class CoveringResult:
    """Outcome of a covering query.

    Attributes
    ----------
    covering_id:
        Identifier of a stored subscription that covers the query, or ``None``
        when the (approximate) search found none.
    query:
        The dominance-query accounting behind this covering check.
    """

    covering_id: Optional[Hashable]
    query: DominanceQueryResult

    @property
    def covered(self) -> bool:
        """True when a covering subscription was found."""
        return self.covering_id is not None


@dataclass(frozen=True)
class CoveringProfile:
    """The per-subscription half of a covering check, computed once.

    A covering query for a subscription runs the same geometry no matter
    which link's detector answers it: validate the ranges, transform them to
    a dominance point, decompose the point's dominance region into a probe
    schedule.  A profile captures all three so that every neighbour strategy
    — and every later promotion re-check — shares one computation.
    """

    ranges: Tuple[Range, ...]
    point: Tuple[int, ...]
    plan: DominancePlan


class CoveringProfiler:
    """Builds :class:`CoveringProfile` objects compatible with a detector config.

    One profiler per broker: it mirrors the parameters every per-link
    :class:`ApproximateCoveringDetector` of that broker was built with
    (attribute count/order, ε, cube budget, curve), so its profiles can be
    handed to any of them.
    """

    #: Offline default ε-cube budget of a broker-level profiler; far larger
    #: than the routing default because the profiler runs once per stored
    #: subscription, not once per covering probe.
    DEFAULT_PROFILER_CUBE_BUDGET = 1_000_000

    def __init__(
        self,
        attributes: int,
        attribute_order: int,
        epsilon: Optional[float] = None,
        cube_budget: Optional[int] = None,
        curve: Optional[str] = None,
        config: Optional[IndexConfig] = None,
    ) -> None:
        if config is None and cube_budget is None:
            cube_budget = self.DEFAULT_PROFILER_CUBE_BUDGET
        config = resolve_index_config(
            config, epsilon=epsilon, cube_budget=cube_budget, curve=curve
        )
        self.config = config
        self.attributes = attributes
        self.attribute_order = attribute_order
        self.epsilon = config.epsilon
        self.cube_budget = config.cube_budget
        self.curve = config.curve
        self.transform = DominanceTransform(attributes, attribute_order)
        self._curve = make_curve(config.curve, self.transform.universe)

    @property
    def cache_key(self) -> Tuple:
        """Everything that affects the profiles this profiler builds.

        Two profilers with equal cache keys produce interchangeable profiles;
        :class:`~repro.pubsub.subscription_store.ProfileCache` namespaces its
        entries by this key so that (in particular) the same subscription
        profiled under two different curves never shares a cached plan.  The
        plan-shaping knobs come from the config's covering key, so profilers
        built from configs differing only in storage knobs (backend, run
        budget, shards) share a namespace — their profiles are identical.
        """
        return (
            self.config.covering_key(),
            self.attributes,
            self.attribute_order,
        )

    def profile(self, ranges: Sequence[Range]) -> CoveringProfile:
        """Validate ``ranges`` and build their point + probe schedule."""
        validated = self.transform.validate_ranges(ranges)
        point = self.transform.to_point(validated)
        plan = build_dominance_plan(
            self.transform.universe,
            point,
            epsilon=self.epsilon,
            cube_budget=self.cube_budget,
            curve=self._curve,
            config=self.config,
        )
        return CoveringProfile(ranges=validated, point=point, plan=plan)


@dataclass
class ApproximateCoveringDetector:
    """Detects covering relationships among range subscriptions, approximately.

    Parameters
    ----------
    attributes:
        Number of numeric attributes β in every subscription.
    attribute_order:
        Bits per attribute; attribute values lie in ``[0, 2^k − 1]``.
    epsilon:
        Default approximation parameter (0 = exhaustive search).
    backend:
        SFC-array backend name (``"flat"``, ``"avl"``, ``"skiplist"``,
        ``"sortedlist"``).  Defaults to the flattened sorted-array store.
    cube_budget:
        Per-query cap on examined standard cubes (passed to the dominance index).
    curve:
        Space-filling-curve kind keying the dominance index
        (:data:`~repro.sfc.factory.CURVE_KINDS`); any recursive-partitioning
        curve gives the same answers, only the probe key ranges differ.
    """

    attributes: int
    attribute_order: int
    epsilon: Optional[float] = None
    backend: Optional[str] = None
    cube_budget: Optional[int] = None
    curve: Optional[str] = None
    seed: Optional[int] = None
    config: Optional[IndexConfig] = None
    transform: DominanceTransform = field(init=False)
    index: ApproximateDominanceIndex = field(init=False)

    def __post_init__(self) -> None:
        if self.config is None and self.cube_budget is None:
            self.cube_budget = CoveringProfiler.DEFAULT_PROFILER_CUBE_BUDGET
        config = resolve_index_config(
            self.config,
            epsilon=self.epsilon,
            backend=self.backend,
            cube_budget=self.cube_budget,
            curve=self.curve,
        )
        self.config = config
        self.epsilon = config.epsilon
        # The dominance index needs an ordered map; the composite "sharded"
        # matching backend maps to the flat store its shards are built on.
        self.backend = ordered_map_backend_name(config.backend)
        self.cube_budget = config.cube_budget
        self.curve = config.curve
        self.transform = DominanceTransform(self.attributes, self.attribute_order)
        self.index = ApproximateDominanceIndex(
            universe=self.transform.universe,
            epsilon=self.epsilon,
            curve=make_curve(self.curve, self.transform.universe),
            backend=self.backend,
            cube_budget=self.cube_budget,
            seed=self.seed,
            config=config,
        )
        self._subscriptions: Dict[Hashable, Tuple[Range, ...]] = {}

    # ---------------------------------------------------------------- updates
    def __len__(self) -> int:
        return len(self._subscriptions)

    def __contains__(self, sub_id: Hashable) -> bool:
        return sub_id in self._subscriptions

    def add_subscription(self, sub_id: Hashable, ranges: Sequence[Range]) -> None:
        """Store a subscription under ``sub_id`` (replacing any previous one)."""
        validated = self.transform.validate_ranges(ranges)
        self._subscriptions[sub_id] = validated
        self.index.insert(sub_id, self.transform.to_point(validated))

    def remove_subscription(self, sub_id: Hashable) -> bool:
        """Remove a subscription; return True when it was present."""
        if sub_id not in self._subscriptions:
            return False
        del self._subscriptions[sub_id]
        self.index.remove(sub_id)
        return True

    def subscription(self, sub_id: Hashable) -> Optional[Tuple[Range, ...]]:
        """Return the stored ranges of ``sub_id``, or ``None``."""
        return self._subscriptions.get(sub_id)

    def subscriptions(self) -> Dict[Hashable, Tuple[Range, ...]]:
        """Return a copy of all stored subscriptions."""
        return dict(self._subscriptions)

    # ---------------------------------------------------------------- queries
    def find_covering(
        self,
        ranges: Sequence[Range],
        epsilon: Optional[float] = None,
        exclude: Optional[Hashable] = None,
    ) -> CoveringResult:
        """Search for a stored subscription covering ``ranges``.

        ``exclude`` allows a router to ask "is this subscription covered by a
        *different* one?" when the query subscription itself is already
        stored; the excluded entry is temporarily removed from the index for
        the duration of the query.
        """
        point = self.transform.to_point(ranges)
        removed_point = None
        if exclude is not None and exclude in self._subscriptions:
            removed_point = self.transform.to_point(self._subscriptions[exclude])
            self.index.remove(exclude)
        try:
            result = self.index.query(point, epsilon=epsilon)
        finally:
            if removed_point is not None:
                self.index.insert(exclude, removed_point)
        covering_id = result.item.item_id if result.item is not None else None
        return CoveringResult(covering_id=covering_id, query=result)

    def is_covered(self, ranges: Sequence[Range], epsilon: Optional[float] = None) -> bool:
        """Return True when the approximate search finds a covering subscription."""
        return self.find_covering(ranges, epsilon=epsilon).covered

    # ---------------------------------------------------------------- profiles
    def compatible_profile(self, profile: CoveringProfile) -> bool:
        """True when ``profile`` was built with this detector's parameters.

        All four answer-affecting parameters must match — universe, curve, ε
        and the cube budget (the plan bakes its key ranges and budget cut-off
        in at build time; ranges from a different curve do not apply).
        """
        assert self.index.curve is not None
        return (
            profile.plan.universe == self.transform.universe
            and profile.plan.curve_kind == self.index.curve.kind
            and profile.plan.epsilon == self.epsilon
            and profile.plan.cube_budget == self.cube_budget
        )

    def add_subscription_profile(self, sub_id: Hashable, profile: CoveringProfile) -> None:
        """Store a subscription from its precomputed profile (no re-validation)."""
        self._subscriptions[sub_id] = profile.ranges
        self.index.insert(sub_id, profile.point)

    def find_covering_profile(self, profile: CoveringProfile) -> CoveringResult:
        """Covering query along a precomputed probe schedule.

        Identical answer to :meth:`find_covering` on the profile's ranges at
        the detector's default ε — the plan replays the exact same search.  A
        profile built under different parameters (paranoia guard; brokers
        share one config) falls back to the classic interleaved search.
        """
        if not self.compatible_profile(profile):
            return self.find_covering(profile.ranges)
        result = self.index.execute_plan(profile.plan)
        covering_id = result.item.item_id if result.item is not None else None
        return CoveringResult(covering_id=covering_id, query=result)

    def find_covering_exhaustive(
        self, ranges: Sequence[Range], exclude: Optional[Hashable] = None
    ) -> CoveringResult:
        """Exhaustive (ε = 0) covering search through the same SFC machinery."""
        return self.find_covering(ranges, epsilon=0.0, exclude=exclude)

    # ----------------------------------------------------------- ground truth
    def all_covering(self, ranges: Sequence[Range]) -> List[Hashable]:
        """Return every stored subscription covering ``ranges`` (linear scan oracle).

        Used to measure the recall of the approximate search; not part of the
        performance-critical path.
        """
        query = self.transform.validate_ranges(ranges)
        return [
            sub_id
            for sub_id, stored in self._subscriptions.items()
            if self.transform.covers(stored, query)
        ]

    def verify_witness(self, result: CoveringResult, ranges: Sequence[Range]) -> bool:
        """Check that a returned witness really covers ``ranges`` (soundness check)."""
        if result.covering_id is None:
            return True
        stored = self._subscriptions.get(result.covering_id)
        if stored is None:
            return False
        return self.transform.covers(stored, ranges)
