"""Ordered-map backends for the SFC array.

The SFC array only needs a small ordered-map contract: insert, delete, exact
lookup, "first key in a range" and an ordered range scan.  Three backends
implement it:

* :class:`SkipListBackend` — the skip list from :mod:`repro.index.skiplist`.
* :class:`AVLBackend` — the AVL tree from :mod:`repro.index.avl`.
* :class:`SortedListBackend` — a plain Python list kept sorted with ``bisect``;
  ``O(n)`` insertion/deletion but extremely fast constants and binary-search
  range probes.  This is the baseline the ablation benchmark compares against.

All three are interchangeable through :func:`make_backend`.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Protocol, Tuple

from .avl import AVLTree
from .skiplist import SkipList

__all__ = [
    "OrderedMapBackend",
    "SkipListBackend",
    "AVLBackend",
    "SortedListBackend",
    "make_backend",
    "BACKEND_NAMES",
]


class OrderedMapBackend(Protocol):
    """Contract required of an SFC-array backend (keys are integers)."""

    def insert(self, key: int, value: Any) -> None: ...

    def delete(self, key: int) -> bool: ...

    def get(self, key: int, default: Any = None) -> Any: ...

    def first_in_range(self, low: int, high: int) -> Optional[Tuple[int, Any]]: ...

    def items_in_range(self, low: int, high: int) -> Iterator[Tuple[int, Any]]: ...

    def items(self) -> Iterator[Tuple[int, Any]]: ...

    def __len__(self) -> int: ...


class SkipListBackend:
    """Skip-list ordered map (expected ``O(log n)`` updates)."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._map: SkipList[int, Any] = SkipList(seed=seed)

    def insert(self, key: int, value: Any) -> None:
        self._map.insert(key, value)

    def delete(self, key: int) -> bool:
        return self._map.delete(key)

    def get(self, key: int, default: Any = None) -> Any:
        return self._map.get(key, default)

    def first_in_range(self, low: int, high: int) -> Optional[Tuple[int, Any]]:
        return self._map.first_in_range(low, high)

    def items_in_range(self, low: int, high: int) -> Iterator[Tuple[int, Any]]:
        return self._map.items_in_range(low, high)

    def items(self) -> Iterator[Tuple[int, Any]]:
        return self._map.items()

    def __len__(self) -> int:
        return len(self._map)


class AVLBackend:
    """AVL-tree ordered map (worst-case ``O(log n)`` updates)."""

    def __init__(self) -> None:
        self._map: AVLTree[int, Any] = AVLTree()

    def insert(self, key: int, value: Any) -> None:
        self._map.insert(key, value)

    def delete(self, key: int) -> bool:
        return self._map.delete(key)

    def get(self, key: int, default: Any = None) -> Any:
        return self._map.get(key, default)

    def first_in_range(self, low: int, high: int) -> Optional[Tuple[int, Any]]:
        return self._map.first_in_range(low, high)

    def items_in_range(self, low: int, high: int) -> Iterator[Tuple[int, Any]]:
        return self._map.items_in_range(low, high)

    def items(self) -> Iterator[Tuple[int, Any]]:
        return self._map.items()

    def __len__(self) -> int:
        return len(self._map)


class SortedListBackend:
    """Sorted Python list with binary-search probes (``O(n)`` updates)."""

    def __init__(self) -> None:
        self._keys: List[int] = []
        self._values: Dict[int, Any] = {}

    def insert(self, key: int, value: Any) -> None:
        if key not in self._values:
            bisect.insort(self._keys, key)
        self._values[key] = value

    def delete(self, key: int) -> bool:
        if key not in self._values:
            return False
        del self._values[key]
        idx = bisect.bisect_left(self._keys, key)
        self._keys.pop(idx)
        return True

    def get(self, key: int, default: Any = None) -> Any:
        return self._values.get(key, default)

    def first_in_range(self, low: int, high: int) -> Optional[Tuple[int, Any]]:
        idx = bisect.bisect_left(self._keys, low)
        if idx < len(self._keys) and self._keys[idx] <= high:
            key = self._keys[idx]
            return (key, self._values[key])
        return None

    def items_in_range(self, low: int, high: int) -> Iterator[Tuple[int, Any]]:
        idx = bisect.bisect_left(self._keys, low)
        while idx < len(self._keys) and self._keys[idx] <= high:
            key = self._keys[idx]
            yield (key, self._values[key])
            idx += 1

    def items(self) -> Iterator[Tuple[int, Any]]:
        for key in self._keys:
            yield (key, self._values[key])

    def __len__(self) -> int:
        return len(self._keys)


BACKEND_NAMES = ("skiplist", "avl", "sortedlist")


def make_backend(name: str, seed: Optional[int] = None) -> OrderedMapBackend:
    """Instantiate a backend by name (``skiplist``, ``avl`` or ``sortedlist``)."""
    if name == "skiplist":
        return SkipListBackend(seed=seed)
    if name == "avl":
        return AVLBackend()
    if name == "sortedlist":
        return SortedListBackend()
    raise ValueError(f"unknown SFC-array backend {name!r}; choose one of {BACKEND_NAMES}")
