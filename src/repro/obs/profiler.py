"""Env-gated hot-path profiling hooks (``REPRO_PROF=1``).

The broker stack's hot paths — match-index probes, flat-store merge-rebuild
and compaction, covering checks, sharded scatter/gather — are wrapped with
:func:`profiled`.  The wrapper checks the module-global
:data:`PROFILER`'s ``enabled`` flag *at call time*; when profiling is off
(the default) a wrapped call costs one attribute load and one branch over the
bare function, which the instrumentation-overhead guard test pins.  Set
``REPRO_PROF=1`` in the environment (read once at import) or flip
``PROFILER.enabled`` at runtime to start collecting.

Collected data is per-name aggregates (call count, total/min/max seconds),
snapshotted via :meth:`HotPathProfiler.summary` and renderable as a
:class:`~repro.analysis.reporting.ResultTable`-friendly row list.  Wall-clock
timings are inherently non-deterministic, so the profiler is never part of
the byte-identical exposition surface — it reports through its own summary.
"""

from __future__ import annotations

import functools
import os
import time
from typing import Callable, Dict, List, Optional, TypeVar

__all__ = ["PROFILER", "PROF_ENV", "HotPathProfiler", "profiled"]

#: Environment variable that turns the hot-path profiler on at import time.
PROF_ENV = "REPRO_PROF"

F = TypeVar("F", bound=Callable)


class _TimingAgg:
    __slots__ = ("calls", "total", "min", "max")

    def __init__(self) -> None:
        self.calls = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def add(self, elapsed: float) -> None:
        self.calls += 1
        self.total += elapsed
        if elapsed < self.min:
            self.min = elapsed
        if elapsed > self.max:
            self.max = elapsed


class HotPathProfiler:
    """Per-name timing aggregates behind a single ``enabled`` flag."""

    def __init__(self, enabled: bool = False, clock: Callable[[], float] = time.perf_counter) -> None:
        self.enabled = enabled
        self._clock = clock
        self._timings: Dict[str, _TimingAgg] = {}

    def record(self, name: str, elapsed: float) -> None:
        agg = self._timings.get(name)
        if agg is None:
            agg = self._timings[name] = _TimingAgg()
        agg.add(elapsed)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """``{name: {calls, total_s, mean_s, min_s, max_s}}``, sorted by name."""
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self._timings):
            agg = self._timings[name]
            out[name] = {
                "calls": agg.calls,
                "total_s": agg.total,
                "mean_s": agg.total / agg.calls if agg.calls else 0.0,
                "min_s": agg.min if agg.calls else 0.0,
                "max_s": agg.max,
            }
        return out

    def rows(self) -> List[Dict[str, object]]:
        """Summary as a row list (for ``ResultTable``-style reporting)."""
        return [
            {"hot_path": name, **stats} for name, stats in self.summary().items()
        ]

    def clear(self) -> None:
        self._timings.clear()

    def __len__(self) -> int:
        return len(self._timings)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "enabled" if self.enabled else "disabled"
        return f"HotPathProfiler({state}, hot_paths={len(self._timings)})"


#: Process-global profiler; ``REPRO_PROF=1`` in the environment enables it at
#: import time, ``PROFILER.enabled = True`` at any later point.
PROFILER = HotPathProfiler(enabled=os.environ.get(PROF_ENV, "") not in ("", "0"))


def profiled(name: str, profiler: Optional[HotPathProfiler] = None) -> Callable[[F], F]:
    """Wrap a hot-path function with call-time-gated timing.

    The gate is read on every call, so flipping ``PROFILER.enabled`` affects
    already-decorated functions.  ``functools.wraps`` keeps the original
    callable reachable as ``__wrapped__`` (the overhead guard test compares
    the two directly).
    """

    def decorate(fn: F) -> F:
        prof = profiler if profiler is not None else PROFILER

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not prof.enabled:
                return fn(*args, **kwargs)
            start = prof._clock()
            try:
                return fn(*args, **kwargs)
            finally:
                prof.record(name, prof._clock() - start)

        return wrapper  # type: ignore[return-value]

    return decorate
