"""Tests shared by all three space filling curves (Z, Hilbert, Gray).

These exercise the properties the paper relies on:

* the curve is a bijection between cells and keys;
* Fact 2.1 — every standard cube maps to one contiguous, aligned key range;
* `cube_key_range` agrees with brute-force enumeration of the cube's cells.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.rect import StandardCube
from repro.geometry.universe import Universe
from repro.sfc.gray import GrayCodeCurve
from repro.sfc.hilbert import HilbertCurve
from repro.sfc.zorder import ZOrderCurve

ALL_CURVES = [ZOrderCurve, HilbertCurve, GrayCodeCurve]


def all_cells(universe: Universe):
    return itertools.product(range(universe.side), repeat=universe.dims)


@pytest.mark.parametrize("curve_cls", ALL_CURVES)
class TestBijection:
    def test_2d_bijection(self, curve_cls):
        universe = Universe(dims=2, order=3)
        curve = curve_cls(universe)
        keys = {curve.key(cell) for cell in all_cells(universe)}
        assert keys == set(range(universe.num_cells))

    def test_3d_bijection(self, curve_cls):
        universe = Universe(dims=3, order=2)
        curve = curve_cls(universe)
        keys = {curve.key(cell) for cell in all_cells(universe)}
        assert keys == set(range(universe.num_cells))

    def test_roundtrip(self, curve_cls):
        universe = Universe(dims=2, order=4)
        curve = curve_cls(universe)
        for cell in all_cells(universe):
            assert curve.point(curve.key(cell)) == cell

    def test_key_rejects_invalid_point(self, curve_cls):
        curve = curve_cls(Universe(dims=2, order=3))
        with pytest.raises(ValueError):
            curve.key((8, 0))
        with pytest.raises(ValueError):
            curve.key((0,))

    def test_point_rejects_invalid_key(self, curve_cls):
        curve = curve_cls(Universe(dims=2, order=3))
        with pytest.raises(ValueError):
            curve.point(-1)
        with pytest.raises(ValueError):
            curve.point(64)


@pytest.mark.parametrize("curve_cls", ALL_CURVES)
class TestFact21CubeRuns:
    """Fact 2.1: a standard cube is a single aligned run of keys."""

    @pytest.mark.parametrize("dims,order", [(2, 3), (2, 4), (3, 2)])
    def test_every_standard_cube_is_one_aligned_run(self, curve_cls, dims, order):
        universe = Universe(dims=dims, order=order)
        curve = curve_cls(universe)
        for level in universe.levels():
            side = universe.cube_side_at_level(level)
            volume = side**dims
            for low in itertools.product(range(0, universe.side, side), repeat=dims):
                cube = StandardCube(universe, low, side)
                keys = sorted(
                    curve.key(cell) for cell in cube.as_rectangle().cells()
                )
                assert keys == list(range(keys[0], keys[0] + volume))
                assert keys[0] % volume == 0

    @pytest.mark.parametrize("dims,order", [(2, 3), (3, 2)])
    def test_cube_key_range_matches_brute_force(self, curve_cls, dims, order):
        universe = Universe(dims=dims, order=order)
        curve = curve_cls(universe)
        for level in universe.levels():
            side = universe.cube_side_at_level(level)
            for low in itertools.product(range(0, universe.side, side), repeat=dims):
                cube = StandardCube(universe, low, side)
                lo, hi = curve.cube_key_range(cube)
                keys = {curve.key(cell) for cell in cube.as_rectangle().cells()}
                assert keys == set(range(lo, hi + 1))

    def test_cube_key_range_rejects_foreign_cube(self, curve_cls):
        curve = curve_cls(Universe(dims=2, order=3))
        foreign = StandardCube(Universe(dims=2, order=4), (0, 0), 2)
        with pytest.raises(ValueError):
            curve.cube_key_range(foreign)

    def test_cube_from_key_prefix_roundtrip(self, curve_cls):
        universe = Universe(dims=2, order=3)
        curve = curve_cls(universe)
        for level in universe.levels():
            for prefix in range(1 << (universe.dims * level)):
                cube = curve.cube_from_key_prefix(prefix, level)
                lo, hi = curve.cube_key_range(cube)
                assert lo == prefix << (universe.dims * (universe.order - level))
                assert hi - lo + 1 == cube.volume


class TestZOrderSpecifics:
    def test_paper_key_example(self):
        """Section 5: cell (3, 5) = (011, 101) has Z key 27."""
        curve = ZOrderCurve(Universe(dims=2, order=3))
        assert curve.key((3, 5)) == 27

    def test_square_a_cube_key(self):
        """Section 5 / Figure 5(c): square 'a' at grid coords (010, 011) has key 13."""
        curve = ZOrderCurve(Universe(dims=2, order=5))
        assert curve.cube_key((0b010, 0b011), level=3) == 13

    def test_cube_key_range_from_coords(self):
        curve = ZOrderCurve(Universe(dims=2, order=3))
        lo, hi = curve.cube_key_range_from_coords((1, 1), level=1)
        # Quadrant (1,1) is the last quarter of the key space.
        assert (lo, hi) == (48, 63)

    def test_cube_of_cell(self):
        curve = ZOrderCurve(Universe(dims=2, order=3))
        cube = curve.cube_of_cell((5, 6), level=1)
        assert cube.low == (4, 4)
        assert cube.side == 4

    def test_cube_coords_roundtrip(self):
        curve = ZOrderCurve(Universe(dims=2, order=4))
        cube = curve.cube_from_coords((2, 3), level=2)
        assert curve.cube_coords(cube) == (2, 3)
        assert cube.side == 4

    def test_cube_key_validates_inputs(self):
        curve = ZOrderCurve(Universe(dims=2, order=3))
        with pytest.raises(ValueError):
            curve.cube_key((4, 0), level=2)  # coordinate too large for level grid
        with pytest.raises(ValueError):
            curve.cube_key((0, 0), level=7)
        with pytest.raises(ValueError):
            curve.cube_key((0,), level=1)

    @given(st.integers(min_value=2, max_value=4), st.data())
    @settings(max_examples=25, deadline=None)
    def test_z_key_is_interleaving(self, order, data):
        universe = Universe(dims=2, order=order)
        curve = ZOrderCurve(universe)
        x = data.draw(st.integers(min_value=0, max_value=universe.max_coordinate))
        y = data.draw(st.integers(min_value=0, max_value=universe.max_coordinate))
        key = curve.key((x, y))
        # Reconstruct by explicit bit interleaving.
        expected = 0
        for level in range(order - 1, -1, -1):
            expected = (expected << 1) | ((x >> level) & 1)
            expected = (expected << 1) | ((y >> level) & 1)
        assert key == expected


class TestHilbertSpecifics:
    def test_unit_step_adjacency_2d(self):
        """Consecutive Hilbert keys are adjacent cells (the curve is continuous)."""
        curve = HilbertCurve(Universe(dims=2, order=4))
        previous = curve.point(0)
        for key in range(1, curve.universe.num_cells):
            current = curve.point(key)
            distance = sum(abs(a - b) for a, b in zip(previous, current))
            assert distance == 1
            previous = current

    def test_unit_step_adjacency_3d(self):
        curve = HilbertCurve(Universe(dims=3, order=2))
        previous = curve.point(0)
        for key in range(1, curve.universe.num_cells):
            current = curve.point(key)
            assert sum(abs(a - b) for a, b in zip(previous, current)) == 1
            previous = current

    def test_canonical_2x2_order(self):
        """The order-1 Hilbert curve visits the four quadrant cells in a U shape."""
        curve = HilbertCurve(Universe(dims=2, order=1))
        walk = [curve.point(k) for k in range(4)]
        assert len(set(walk)) == 4
        assert walk[0] == (0, 0)


class TestGraySpecifics:
    def test_single_interleaved_bit_flip(self):
        """Consecutive Gray-curve keys differ in exactly one interleaved coordinate bit."""
        from repro.geometry.bits import interleave_bits

        curve = GrayCodeCurve(Universe(dims=2, order=3))
        previous = interleave_bits(curve.point(0), 3)
        for key in range(1, curve.universe.num_cells):
            current = interleave_bits(curve.point(key), 3)
            diff = previous ^ current
            assert diff != 0 and (diff & (diff - 1)) == 0
            previous = current


class TestWalkAndBruteForce:
    def test_walk_covers_universe(self, any_curve_2d):
        cells = list(any_curve_2d.walk())
        assert len(cells) == any_curve_2d.universe.num_cells
        assert len(set(cells)) == len(cells)

    def test_brute_force_runs_single_cell(self, any_curve_2d):
        from repro.geometry.rect import Rectangle

        assert any_curve_2d.brute_force_runs(Rectangle((3, 3), (3, 3))) == 1

    def test_brute_force_runs_whole_universe(self, any_curve_2d):
        from repro.geometry.rect import Rectangle

        u = any_curve_2d.universe
        whole = Rectangle((0,) * u.dims, (u.max_coordinate,) * u.dims)
        assert any_curve_2d.brute_force_runs(whole) == 1
