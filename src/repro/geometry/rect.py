"""Rectangles, extremal rectangles and standard cubes on the discrete universe.

Terminology follows the paper:

* A *rectangle* is an axis-aligned box of cells, given by inclusive integer
  bounds per dimension.
* An *extremal rectangle* ``R(ℓ)`` has one vertex pinned at the universe's top
  corner ``(2^k − 1, ..., 2^k − 1)``; it is fully specified by its side-length
  vector ``ℓ``.  Point-dominance query regions are extremal rectangles.
* A *standard cube* at level ``i`` is one of the cubes produced by ``i`` rounds
  of recursive bisection of the universe; its side is ``2^{k−i}`` and its low
  corner is aligned to a multiple of its side.  Standard cubes are exactly the
  regions that map to a single contiguous *run* of keys on a recursive SFC
  (Fact 2.1 in the paper).
* The *aspect ratio* ``α`` of a rectangle is ``b(ℓ_max) − b(ℓ_min)``, the
  difference in bit lengths between the longest and shortest sides (the
  paper's Section 1.1 definition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from .bits import bit_length, suffix_vector, truncate_vector
from .universe import Universe

__all__ = ["Rectangle", "ExtremalRectangle", "StandardCube", "aspect_ratio"]


def aspect_ratio(lengths: Sequence[int]) -> int:
    """Return the paper's aspect ratio ``α = b(ℓ_max) − b(ℓ_min)`` of a side-length vector.

    The aspect ratio is 0 when all sides have the same bit length (roughly
    cube-like regions) and grows as the sides become more unequal.

    >>> aspect_ratio((8, 8, 8))
    0
    >>> aspect_ratio((1, 256))
    8
    """
    if not lengths:
        raise ValueError("aspect ratio of an empty length vector is undefined")
    bls = [bit_length(int(v)) for v in lengths]
    if min(bls) == 0:
        raise ValueError("side lengths must be positive")
    return max(bls) - min(bls)


@dataclass(frozen=True)
class Rectangle:
    """An axis-aligned box of cells with inclusive integer bounds.

    ``low[i] <= high[i]`` for every dimension; the rectangle contains every
    cell ``p`` with ``low[i] <= p[i] <= high[i]``.
    """

    low: Tuple[int, ...]
    high: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.low) != len(self.high):
            raise ValueError(
                f"low corner has {len(self.low)} coordinates but high corner has {len(self.high)}"
            )
        if not self.low:
            raise ValueError("a rectangle needs at least one dimension")
        for lo, hi in zip(self.low, self.high):
            if lo > hi:
                raise ValueError(f"low bound {lo} exceeds high bound {hi}")

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_bounds(cls, bounds: Sequence[Tuple[int, int]]) -> "Rectangle":
        """Build a rectangle from a sequence of ``(low, high)`` pairs."""
        lows = tuple(int(lo) for lo, _ in bounds)
        highs = tuple(int(hi) for _, hi in bounds)
        return cls(lows, highs)

    # ----------------------------------------------------------------- basics
    @property
    def dims(self) -> int:
        """Number of dimensions."""
        return len(self.low)

    @property
    def side_lengths(self) -> Tuple[int, ...]:
        """Number of cells along each dimension."""
        return tuple(hi - lo + 1 for lo, hi in zip(self.low, self.high))

    @property
    def volume(self) -> int:
        """Number of cells contained in the rectangle."""
        vol = 1
        for s in self.side_lengths:
            vol *= s
        return vol

    @property
    def aspect_ratio(self) -> int:
        """The paper's bit-length aspect ratio ``α`` of this rectangle."""
        return aspect_ratio(self.side_lengths)

    def bounds(self) -> Tuple[Tuple[int, int], ...]:
        """Return the ``(low, high)`` pair per dimension."""
        return tuple(zip(self.low, self.high))

    # ------------------------------------------------------------ set algebra
    def contains_point(self, point: Sequence[int]) -> bool:
        """Return True when ``point`` lies inside this rectangle."""
        if len(point) != self.dims:
            return False
        return all(lo <= x <= hi for x, lo, hi in zip(point, self.low, self.high))

    def contains_rectangle(self, other: "Rectangle") -> bool:
        """Return True when ``other`` is entirely inside this rectangle."""
        if other.dims != self.dims:
            return False
        return all(
            slo <= olo and ohi <= shi
            for slo, shi, olo, ohi in zip(self.low, self.high, other.low, other.high)
        )

    def intersects(self, other: "Rectangle") -> bool:
        """Return True when the two rectangles share at least one cell."""
        if other.dims != self.dims:
            return False
        return all(
            olo <= shi and slo <= ohi
            for slo, shi, olo, ohi in zip(self.low, self.high, other.low, other.high)
        )

    def intersection(self, other: "Rectangle") -> "Rectangle | None":
        """Return the intersection rectangle, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        low = tuple(max(a, b) for a, b in zip(self.low, other.low))
        high = tuple(min(a, b) for a, b in zip(self.high, other.high))
        return Rectangle(low, high)

    # --------------------------------------------------------------- iteration
    def cells(self) -> Iterator[Tuple[int, ...]]:
        """Iterate over every cell in the rectangle (use only for small regions)."""
        def recurse(dim: int, prefix: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
            if dim == self.dims:
                yield prefix
                return
            for x in range(self.low[dim], self.high[dim] + 1):
                yield from recurse(dim + 1, prefix + (x,))

        return recurse(0, ())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"[{lo},{hi}]" for lo, hi in zip(self.low, self.high))
        return f"Rectangle({parts})"


@dataclass(frozen=True)
class ExtremalRectangle:
    """The paper's ``R(ℓ)``: a rectangle whose high corner is the universe top corner.

    The rectangle spans ``[2^k − ℓ_i, 2^k − 1]`` along dimension ``i``; it is
    fully described by the universe and the side-length vector ``ℓ`` with
    ``1 ≤ ℓ_i ≤ 2^k``.
    """

    universe: Universe
    lengths: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "lengths", self.universe.validate_lengths(self.lengths))

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_query_point(cls, universe: Universe, point: Sequence[int]) -> "ExtremalRectangle":
        """Build the dominance region ``([x_1, max], ..., [x_d, max])`` of a query point."""
        pt = universe.validate_point(point)
        lengths = tuple(universe.max_coordinate - x + 1 for x in pt)
        return cls(universe, lengths)

    # ----------------------------------------------------------------- basics
    @property
    def dims(self) -> int:
        return self.universe.dims

    @property
    def low(self) -> Tuple[int, ...]:
        """Low corner ``(2^k − ℓ_1, ..., 2^k − ℓ_d)``."""
        side = self.universe.side
        return tuple(side - v for v in self.lengths)

    @property
    def high(self) -> Tuple[int, ...]:
        """High corner — always the universe's top corner."""
        return self.universe.top_corner

    @property
    def volume(self) -> int:
        vol = 1
        for v in self.lengths:
            vol *= v
        return vol

    @property
    def aspect_ratio(self) -> int:
        """The paper's ``α = b(ℓ_max) − b(ℓ_min)``."""
        return aspect_ratio(self.lengths)

    def as_rectangle(self) -> Rectangle:
        """View this extremal rectangle as a plain :class:`Rectangle`."""
        return Rectangle(self.low, self.high)

    def contains_point(self, point: Sequence[int]) -> bool:
        return self.as_rectangle().contains_point(point)

    # ------------------------------------------------------------- truncation
    def truncated(self, m: int) -> "ExtremalRectangle":
        """Return the paper's ``R^m(ℓ) = R(t(ℓ, m))``.

        Each side length is truncated to its ``m`` most significant bits,
        producing a smaller extremal rectangle nested inside this one
        (Lemma 3.2 guarantees that with ``m ≥ log2(2d/ε)`` at least a
        ``1 − ε`` fraction of the volume is retained).
        """
        return ExtremalRectangle(self.universe, truncate_vector(self.lengths, m))

    def suffix(self, i: int) -> "ExtremalRectangle | None":
        """Return ``R(S_i(ℓ))``, or ``None`` if some truncated side becomes zero."""
        lengths = suffix_vector(self.lengths, i)
        if any(v == 0 for v in lengths):
            return None
        return ExtremalRectangle(self.universe, lengths)

    def volume_fraction_of(self, other: "ExtremalRectangle") -> float:
        """Return ``vol(self) / vol(other)``; used to verify Lemma 3.2."""
        return self.volume / other.volume

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExtremalRectangle(ℓ={self.lengths}, α={self.aspect_ratio})"


@dataclass(frozen=True)
class StandardCube:
    """A standard cube of the recursive partitioning of the universe.

    A standard cube at *level* ``i`` (``0 ≤ i ≤ k``) has side ``2^{k−i}`` and a
    low corner whose coordinates are multiples of its side.  Level ``k`` cubes
    are individual cells; the level-0 cube is the whole universe.

    The reproduction stores cubes by their low corner and side length because
    that is what the greedy decomposition and the key-enumeration algorithm
    manipulate; the SFC-specific *key range* of a cube is computed by the SFC
    classes in :mod:`repro.sfc`.
    """

    universe: Universe
    low: Tuple[int, ...]
    side: int

    def __post_init__(self) -> None:
        if self.side <= 0 or (self.side & (self.side - 1)) != 0:
            raise ValueError(f"standard cube side must be a power of two, got {self.side}")
        if self.side > self.universe.side:
            raise ValueError(
                f"standard cube side {self.side} exceeds the universe side {self.universe.side}"
            )
        low = self.universe.validate_point(self.low)
        object.__setattr__(self, "low", low)
        for x in low:
            if x % self.side != 0:
                raise ValueError(
                    f"standard cube low corner {low} is not aligned to side {self.side}"
                )

    @property
    def dims(self) -> int:
        return self.universe.dims

    @property
    def level(self) -> int:
        """Recursion level of the cube (0 = whole universe, k = single cell)."""
        return self.universe.level_of_cube_side(self.side)

    @property
    def high(self) -> Tuple[int, ...]:
        return tuple(x + self.side - 1 for x in self.low)

    @property
    def volume(self) -> int:
        return self.side ** self.dims

    def as_rectangle(self) -> Rectangle:
        return Rectangle(self.low, self.high)

    def contains_point(self, point: Sequence[int]) -> bool:
        return all(lo <= x <= lo + self.side - 1 for x, lo in zip(point, self.low))

    def contains_cube(self, other: "StandardCube") -> bool:
        """Return True when ``other`` lies entirely inside this cube."""
        return self.as_rectangle().contains_rectangle(other.as_rectangle())

    def is_disjoint_from(self, other: "StandardCube") -> bool:
        """Return True when the two cubes share no cell.

        By Lemma 2.1, two distinct standard cubes are either nested or
        disjoint; this method lets tests verify that invariant.
        """
        return not self.as_rectangle().intersects(other.as_rectangle())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"StandardCube(low={self.low}, side={self.side})"
