"""Unit tests for repro.geometry.universe."""

from __future__ import annotations

import pytest

from repro.geometry.universe import Universe


class TestUniverseBasics:
    def test_sizes(self):
        u = Universe(dims=3, order=4)
        assert u.side == 16
        assert u.max_coordinate == 15
        assert u.num_cells == 16**3
        assert u.key_bits == 12
        assert u.max_key == 16**3 - 1
        assert u.top_corner == (15, 15, 15)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Universe(dims=0, order=3)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            Universe(dims=2, order=0)

    def test_equality_and_hash(self):
        assert Universe(2, 3) == Universe(2, 3)
        assert Universe(2, 3) != Universe(2, 4)
        assert hash(Universe(2, 3)) == hash(Universe(2, 3))


class TestPointValidation:
    def test_contains_point(self):
        u = Universe(2, 3)
        assert u.contains_point((0, 7))
        assert not u.contains_point((0, 8))
        assert not u.contains_point((0,))
        assert not u.contains_point((-1, 0))

    def test_validate_point_converts_to_tuple_of_ints(self):
        u = Universe(2, 3)
        assert u.validate_point([3, 4]) == (3, 4)

    def test_validate_point_rejects_wrong_dims(self):
        u = Universe(2, 3)
        with pytest.raises(ValueError):
            u.validate_point((1, 2, 3))

    def test_validate_point_rejects_out_of_range(self):
        u = Universe(2, 3)
        with pytest.raises(ValueError):
            u.validate_point((1, 8))
        with pytest.raises(ValueError):
            u.validate_point((-1, 0))


class TestLengthValidation:
    def test_valid_lengths(self):
        u = Universe(2, 3)
        assert u.validate_lengths((1, 8)) == (1, 8)

    def test_zero_length_rejected(self):
        u = Universe(2, 3)
        with pytest.raises(ValueError):
            u.validate_lengths((0, 4))

    def test_too_long_rejected(self):
        u = Universe(2, 3)
        with pytest.raises(ValueError):
            u.validate_lengths((9, 4))

    def test_wrong_arity_rejected(self):
        u = Universe(2, 3)
        with pytest.raises(ValueError):
            u.validate_lengths((4,))


class TestStandardCubeLevels:
    def test_levels(self):
        u = Universe(2, 3)
        assert list(u.levels()) == [0, 1, 2, 3]

    def test_cube_side_at_level(self):
        u = Universe(2, 3)
        assert u.cube_side_at_level(0) == 8
        assert u.cube_side_at_level(3) == 1
        with pytest.raises(ValueError):
            u.cube_side_at_level(4)

    def test_level_of_cube_side(self):
        u = Universe(2, 3)
        assert u.level_of_cube_side(8) == 0
        assert u.level_of_cube_side(1) == 3
        with pytest.raises(ValueError):
            u.level_of_cube_side(3)
        with pytest.raises(ValueError):
            u.level_of_cube_side(16)

    def test_level_roundtrip(self):
        u = Universe(3, 5)
        for level in u.levels():
            assert u.level_of_cube_side(u.cube_side_at_level(level)) == level
