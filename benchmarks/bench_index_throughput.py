"""E-THROUGHPUT — covering-check throughput vs number of stored subscriptions.

Paper reference: the related-work comparison of Section 1.3 — the SFC index's
per-query cost does not grow with the number of stored subscriptions (unlike
the linear scan used by deployed systems), while the worst-case-optimal range
tree pays for its speed with super-linear storage.  The bench reports
queries/second for the approximate SFC detector, the linear scan, a k-d tree
and a static range tree, plus the range tree's storage blow-up.

The SFC detector runs once per ordered-map backend (the flattened sorted
array that is now the default, and the AVL tree it replaced) so the backend
swap shows up as an axis in the recorded tables.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_throughput_experiment


@pytest.mark.parametrize("backend", ["flat", "avl"])
def test_index_throughput(run_once, record_table, backend):
    table = run_once(
        run_throughput_experiment,
        attributes=2,
        order=10,
        sizes=(500, 1_000, 2_000),
        num_queries=60,
        epsilon=0.1,
        backend=backend,
    )
    record_table(f"index_throughput_{backend}", table)
    rows = table.rows
    # Linear-scan throughput decays as the table grows.
    assert rows[-1]["linear_qps"] < rows[0]["linear_qps"]
    # The SFC detector's throughput does not collapse with table size
    # (allow generous noise margins on a single-shot measurement).
    assert rows[-1]["approx_qps"] > 0.4 * rows[0]["approx_qps"]
    # The range tree's storage grows much faster than the input.
    assert rows[-1]["rangetree_storage_cells"] > 50 * rows[-1]["stored"]
    # Soundness: the approximate detector never finds more covers than exist.
    for row in rows:
        assert row["approx_hits"] <= row["exact_hits"]
