"""E-COST — covering-query cost: approximate vs exhaustive vs linear scan.

Paper reference: the headline claim of Sections 1 and 3 — an ε-approximate
covering search touches far fewer runs than an exhaustive one while still
finding most existing covering relationships.  The bench sweeps ε (including
ε = 0, the exhaustive case) on a single-attribute workload where the
exhaustive cost is measurable, and reports runs probed, throughput and recall.
"""

from __future__ import annotations

from repro.analysis.experiments import run_approx_vs_exhaustive_experiment


def test_approx_vs_exhaustive(run_once, record_table):
    table = run_once(
        run_approx_vs_exhaustive_experiment,
        attributes=1,
        order=12,
        num_subscriptions=2_000,
        num_queries=200,
        epsilons=(0.0, 0.01, 0.05, 0.1, 0.2),
    )
    record_table("approx_vs_exhaustive", table)
    by_eps = {row["epsilon"]: row for row in table.rows if row["mode"] != "linear-scan"}
    exhaustive = by_eps[0.0]
    approx = by_eps[0.05]
    # The approximate query does far less work per query...
    assert approx["mean_runs_probed"] * 4 < exhaustive["mean_runs_probed"]
    # ...while still detecting most covering relationships.
    assert approx["recall"] >= 0.85
    assert exhaustive["recall"] == 1.0
