"""Experiment drivers and plain-text reporting."""

from .experiments import (
    run_approx_vs_exhaustive_experiment,
    run_dimensionality_experiment,
    run_fig1_experiment,
    run_fig2_experiment,
    run_lem32_experiment,
    run_pubsub_experiment,
    run_recall_experiment,
    run_sim_latency_experiment,
    run_thm31_experiment,
    run_thm41_experiment,
    run_throughput_experiment,
)
from .reporting import ResultTable, format_bar_chart, format_table

__all__ = [
    "run_approx_vs_exhaustive_experiment",
    "run_dimensionality_experiment",
    "run_fig1_experiment",
    "run_fig2_experiment",
    "run_lem32_experiment",
    "run_pubsub_experiment",
    "run_recall_experiment",
    "run_sim_latency_experiment",
    "run_thm31_experiment",
    "run_thm41_experiment",
    "run_throughput_experiment",
    "ResultTable",
    "format_bar_chart",
    "format_table",
]
