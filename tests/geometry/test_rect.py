"""Unit and property tests for rectangles, extremal rectangles and standard cubes."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.geometry.rect import ExtremalRectangle, Rectangle, StandardCube, aspect_ratio
from repro.geometry.universe import Universe


class TestAspectRatio:
    def test_equal_sides(self):
        assert aspect_ratio((8, 8, 8)) == 0

    def test_same_bit_length(self):
        # 5 and 7 both have 3 bits, so the paper's aspect ratio is 0.
        assert aspect_ratio((5, 7)) == 0

    def test_extreme(self):
        assert aspect_ratio((1, 256)) == 8

    def test_rejects_zero_side(self):
        with pytest.raises(ValueError):
            aspect_ratio((0, 4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            aspect_ratio(())


class TestRectangle:
    def test_basic_properties(self):
        r = Rectangle((1, 2), (4, 3))
        assert r.dims == 2
        assert r.side_lengths == (4, 2)
        assert r.volume == 8
        assert r.bounds() == ((1, 4), (2, 3))

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Rectangle((5, 0), (4, 3))

    def test_mismatched_dims(self):
        with pytest.raises(ValueError):
            Rectangle((0, 0), (1,))

    def test_from_bounds(self):
        assert Rectangle.from_bounds([(0, 3), (2, 2)]) == Rectangle((0, 2), (3, 2))

    def test_contains_point(self):
        r = Rectangle((1, 1), (3, 3))
        assert r.contains_point((1, 3))
        assert r.contains_point((2, 2))
        assert not r.contains_point((0, 2))
        assert not r.contains_point((2, 4))
        assert not r.contains_point((2,))

    def test_contains_rectangle(self):
        outer = Rectangle((0, 0), (7, 7))
        inner = Rectangle((2, 3), (4, 5))
        assert outer.contains_rectangle(inner)
        assert not inner.contains_rectangle(outer)
        assert outer.contains_rectangle(outer)

    def test_intersection(self):
        a = Rectangle((0, 0), (4, 4))
        b = Rectangle((3, 2), (6, 6))
        assert a.intersects(b)
        assert a.intersection(b) == Rectangle((3, 2), (4, 4))

    def test_disjoint(self):
        a = Rectangle((0, 0), (1, 1))
        b = Rectangle((3, 3), (4, 4))
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_cells_enumeration(self):
        r = Rectangle((0, 1), (1, 2))
        assert sorted(r.cells()) == [(0, 1), (0, 2), (1, 1), (1, 2)]
        assert len(list(r.cells())) == r.volume

    def test_aspect_ratio_property(self):
        assert Rectangle((0, 0), (0, 255)).aspect_ratio == 8


class TestExtremalRectangle:
    def test_corners(self):
        u = Universe(2, 4)
        r = ExtremalRectangle(u, (3, 16))
        assert r.low == (13, 0)
        assert r.high == (15, 15)
        assert r.volume == 48

    def test_from_query_point(self):
        u = Universe(2, 4)
        r = ExtremalRectangle.from_query_point(u, (10, 0))
        assert r.lengths == (6, 16)
        assert r.low == (10, 0)

    def test_from_query_point_at_corner(self):
        u = Universe(2, 3)
        r = ExtremalRectangle.from_query_point(u, (7, 7))
        assert r.lengths == (1, 1)
        assert r.volume == 1

    def test_invalid_lengths(self):
        u = Universe(2, 4)
        with pytest.raises(ValueError):
            ExtremalRectangle(u, (0, 4))
        with pytest.raises(ValueError):
            ExtremalRectangle(u, (17, 4))

    def test_contains_point(self):
        u = Universe(2, 4)
        r = ExtremalRectangle(u, (4, 2))
        assert r.contains_point((12, 14))
        assert not r.contains_point((11, 14))
        assert not r.contains_point((12, 13))

    def test_as_rectangle_volume_matches(self):
        u = Universe(3, 3)
        r = ExtremalRectangle(u, (3, 5, 8))
        assert r.as_rectangle().volume == r.volume == 3 * 5 * 8

    def test_truncated_is_nested(self):
        u = Universe(2, 8)
        r = ExtremalRectangle(u, (201, 147))
        t = r.truncated(3)
        assert t.volume <= r.volume
        assert r.as_rectangle().contains_rectangle(t.as_rectangle())

    def test_suffix_none_when_empty(self):
        u = Universe(2, 4)
        r = ExtremalRectangle(u, (1, 9))
        assert r.suffix(1) is None  # S_1(1) = 0 → empty
        s = r.suffix(0)
        assert s is not None and s.lengths == (1, 9)

    def test_volume_fraction(self):
        u = Universe(2, 8)
        r = ExtremalRectangle(u, (200, 100))
        t = r.truncated(2)
        assert t.volume_fraction_of(r) == pytest.approx(t.volume / r.volume)

    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=2, max_value=8),
        st.data(),
    )
    def test_query_point_roundtrip(self, dims, order, data):
        u = Universe(dims, order)
        point = tuple(
            data.draw(st.integers(min_value=0, max_value=u.max_coordinate)) for _ in range(dims)
        )
        r = ExtremalRectangle.from_query_point(u, point)
        assert r.low == point
        assert r.contains_point(point)
        assert r.contains_point(u.top_corner)


class TestStandardCube:
    def test_valid_cube(self):
        u = Universe(2, 4)
        c = StandardCube(u, (4, 8), 4)
        assert c.level == 2
        assert c.high == (7, 11)
        assert c.volume == 16

    def test_alignment_enforced(self):
        u = Universe(2, 4)
        with pytest.raises(ValueError):
            StandardCube(u, (2, 0), 4)

    def test_side_must_be_power_of_two(self):
        u = Universe(2, 4)
        with pytest.raises(ValueError):
            StandardCube(u, (0, 0), 3)

    def test_side_cannot_exceed_universe(self):
        u = Universe(2, 3)
        with pytest.raises(ValueError):
            StandardCube(u, (0, 0), 16)

    def test_whole_universe_cube(self):
        u = Universe(2, 3)
        c = StandardCube(u, (0, 0), 8)
        assert c.level == 0
        assert c.volume == u.num_cells

    def test_contains_point_and_cube(self):
        u = Universe(2, 4)
        parent = StandardCube(u, (0, 0), 8)
        child = StandardCube(u, (4, 4), 4)
        assert parent.contains_cube(child)
        assert not child.contains_cube(parent)
        assert parent.contains_point((7, 7))
        assert not parent.contains_point((8, 0))

    def test_lemma21_nested_or_disjoint(self):
        """Lemma 2.1: two standard cubes are nested or disjoint, never partially overlapping."""
        u = Universe(2, 3)
        cubes = []
        for level in u.levels():
            side = u.cube_side_at_level(level)
            for x in range(0, u.side, side):
                for y in range(0, u.side, side):
                    cubes.append(StandardCube(u, (x, y), side))
        for a in cubes[:40]:
            for b in cubes[:40]:
                if a == b:
                    continue
                assert a.contains_cube(b) or b.contains_cube(a) or a.is_disjoint_from(b)
