"""Baseline covering-detection strategies the paper is compared against."""

from .exhaustive_sfc import ExhaustiveSFCCoveringDetector
from .linear_scan import LinearScanCoveringDetector, LinearScanStats
from .probabilistic import ProbabilisticCoveringDetector, ProbabilisticStats

__all__ = [
    "ExhaustiveSFCCoveringDetector",
    "LinearScanCoveringDetector",
    "LinearScanStats",
    "ProbabilisticCoveringDetector",
    "ProbabilisticStats",
]
