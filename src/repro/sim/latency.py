"""Per-link latency models for the simulated broker transport.

A latency model answers one question: how long does a message take to travel
the overlay link from ``sender`` to ``receiver``?  Three models are provided:

* :class:`FixedLatency` — every link takes the same constant time (the
  classic "unit delay" overlay model; useful for hop-count reasoning).
* :class:`UniformJitterLatency` — a base delay plus uniform jitter drawn from
  the transport's seeded RNG (models scheduling/queueing noise).
* :class:`DistanceLatency` — delay proportional to the Euclidean distance
  between broker coordinates (models geographically spread deployments; the
  helper :func:`random_positions` scatters brokers deterministically).
* :class:`RegionLatency` — two-tier WAN-vs-LAN delays driven by a broker →
  region map: links inside one region pay the LAN delay, links crossing
  regions pay the WAN delay, each plus optional uniform jitter.  This is the
  model the internet-scale cluster-of-clusters topologies
  (:mod:`repro.workloads.topologies`) wire up from their region metadata.

All randomness flows through the ``rng`` passed to :meth:`sample`, so a seeded
transport produces identical delays run over run.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Hashable, Mapping, Optional, Protocol, Sequence, Tuple

__all__ = [
    "LatencyModel",
    "FixedLatency",
    "UniformJitterLatency",
    "DistanceLatency",
    "RegionLatency",
    "random_positions",
    "make_latency_model",
]


class LatencyModel(Protocol):
    """Minimal contract: per-message link delay."""

    def sample(self, sender: Hashable, receiver: Hashable, rng: random.Random) -> float:
        """Return the delay for one message on the ``sender -> receiver`` link."""


class FixedLatency:
    """Constant delay on every link."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = delay

    def sample(self, sender: Hashable, receiver: Hashable, rng: random.Random) -> float:
        return self.delay

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedLatency({self.delay})"


class UniformJitterLatency:
    """Base delay plus uniform jitter in ``[0, jitter]``."""

    def __init__(self, base: float = 1.0, jitter: float = 1.0) -> None:
        if base < 0 or jitter < 0:
            raise ValueError(f"base and jitter must be non-negative, got {base}, {jitter}")
        self.base = base
        self.jitter = jitter

    def sample(self, sender: Hashable, receiver: Hashable, rng: random.Random) -> float:
        return self.base + rng.uniform(0.0, self.jitter)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformJitterLatency(base={self.base}, jitter={self.jitter})"


class DistanceLatency:
    """Delay proportional to the distance between broker positions.

    ``positions`` maps each broker id to a coordinate tuple; a link's delay is
    ``base + scale * euclidean(sender, receiver)``.  Brokers missing from the
    map fall back to ``base`` alone (treated as co-located).
    """

    def __init__(
        self,
        positions: Mapping[Hashable, Sequence[float]],
        base: float = 0.1,
        scale: float = 1.0,
    ) -> None:
        if base < 0 or scale < 0:
            raise ValueError(f"base and scale must be non-negative, got {base}, {scale}")
        self.positions: Dict[Hashable, Tuple[float, ...]] = {
            broker: tuple(float(c) for c in coords) for broker, coords in positions.items()
        }
        self.base = base
        self.scale = scale

    def sample(self, sender: Hashable, receiver: Hashable, rng: random.Random) -> float:
        a = self.positions.get(sender)
        b = self.positions.get(receiver)
        if a is None or b is None:
            return self.base
        distance = math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))
        return self.base + self.scale * distance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistanceLatency({len(self.positions)} positions, "
            f"base={self.base}, scale={self.scale})"
        )


class RegionLatency:
    """Two-tier WAN-vs-LAN link delays driven by region membership.

    ``regions`` maps each broker id to a region label.  A link whose endpoints
    share a region costs ``lan`` simulated seconds; a link crossing regions
    costs ``wan``; both get uniform jitter in ``[0, jitter]`` on top (drawn
    from the transport's seeded RNG, so runs stay deterministic).  Brokers
    missing from the map are treated as their own singleton region — every
    link touching them is a WAN link.
    """

    def __init__(
        self,
        regions: Mapping[Hashable, Hashable],
        lan: float = 0.05,
        wan: float = 0.5,
        jitter: float = 0.0,
    ) -> None:
        if lan < 0 or wan < 0 or jitter < 0:
            raise ValueError(
                f"lan, wan and jitter must be non-negative, got {lan}, {wan}, {jitter}"
            )
        self.regions: Dict[Hashable, Hashable] = dict(regions)
        self.lan = lan
        self.wan = wan
        self.jitter = jitter

    def sample(self, sender: Hashable, receiver: Hashable, rng: random.Random) -> float:
        region_a = self.regions.get(sender, ("solo", sender))
        region_b = self.regions.get(receiver, ("solo", receiver))
        base = self.lan if region_a == region_b else self.wan
        if self.jitter:
            base += rng.uniform(0.0, self.jitter)
        return base

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RegionLatency({len(self.regions)} brokers, lan={self.lan}, "
            f"wan={self.wan}, jitter={self.jitter})"
        )


def random_positions(
    broker_ids: Sequence[Hashable], seed: Optional[int] = 0, extent: float = 10.0
) -> Dict[Hashable, Tuple[float, float]]:
    """Scatter brokers uniformly over an ``extent`` × ``extent`` square (seeded)."""
    rng = random.Random(seed)
    return {
        broker: (rng.uniform(0.0, extent), rng.uniform(0.0, extent))
        for broker in broker_ids
    }


def make_latency_model(kind: str, **kwargs: object) -> LatencyModel:
    """Build a latency model by name: ``"fixed"``, ``"uniform"``, ``"distance"`` or ``"region"``."""
    if kind == "fixed":
        return FixedLatency(**kwargs)  # type: ignore[arg-type]
    if kind == "uniform":
        return UniformJitterLatency(**kwargs)  # type: ignore[arg-type]
    if kind == "distance":
        return DistanceLatency(**kwargs)  # type: ignore[arg-type]
    if kind == "region":
        return RegionLatency(**kwargs)  # type: ignore[arg-type]
    raise ValueError(
        f"unknown latency model {kind!r}; expected 'fixed', 'uniform', "
        "'distance' or 'region'"
    )
