"""Ordered-map backends for the SFC array.

The SFC array only needs a small ordered-map contract: insert, delete, exact
lookup, "first key in a range" and an ordered range scan.  Four backends
implement it:

* :class:`SkipListBackend` — the skip list from :mod:`repro.index.skiplist`.
* :class:`AVLBackend` — the AVL tree from :mod:`repro.index.avl`.
* :class:`SortedListBackend` — a plain Python list kept sorted with ``bisect``;
  ``O(n)`` insertion/deletion but extremely fast constants and binary-search
  range probes.  This is the baseline the ablation benchmark compares against.
* :class:`FlatBackend` — a flattened sorted array with a bounded pending
  buffer for inserts and tombstoned deletes; probes are pure ``bisect``, and
  updates amortise their re-sorting cost across ``O(√n)``-sized merges.  This
  replaces per-node pointer structures on the hot path at scale.

All four are interchangeable through :func:`make_backend`.
"""

from __future__ import annotations

import bisect
from math import isqrt
from typing import Any, Dict, Iterator, List, Optional, Protocol, Set, Tuple

from .avl import AVLTree
from .skiplist import SkipList

__all__ = [
    "OrderedMapBackend",
    "SkipListBackend",
    "AVLBackend",
    "SortedListBackend",
    "FlatBackend",
    "make_backend",
    "ordered_map_backend_name",
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
]


class OrderedMapBackend(Protocol):
    """Contract required of an SFC-array backend (keys are integers)."""

    def insert(self, key: int, value: Any) -> None: ...

    def delete(self, key: int) -> bool: ...

    def get(self, key: int, default: Any = None) -> Any: ...

    def first_in_range(self, low: int, high: int) -> Optional[Tuple[int, Any]]: ...

    def items_in_range(self, low: int, high: int) -> Iterator[Tuple[int, Any]]: ...

    def items(self) -> Iterator[Tuple[int, Any]]: ...

    def __len__(self) -> int: ...


class SkipListBackend:
    """Skip-list ordered map (expected ``O(log n)`` updates)."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._map: SkipList[int, Any] = SkipList(seed=seed)

    def insert(self, key: int, value: Any) -> None:
        self._map.insert(key, value)

    def delete(self, key: int) -> bool:
        return self._map.delete(key)

    def get(self, key: int, default: Any = None) -> Any:
        return self._map.get(key, default)

    def first_in_range(self, low: int, high: int) -> Optional[Tuple[int, Any]]:
        return self._map.first_in_range(low, high)

    def items_in_range(self, low: int, high: int) -> Iterator[Tuple[int, Any]]:
        return self._map.items_in_range(low, high)

    def items(self) -> Iterator[Tuple[int, Any]]:
        return self._map.items()

    def __len__(self) -> int:
        return len(self._map)


class AVLBackend:
    """AVL-tree ordered map (worst-case ``O(log n)`` updates)."""

    def __init__(self) -> None:
        self._map: AVLTree[int, Any] = AVLTree()

    def insert(self, key: int, value: Any) -> None:
        self._map.insert(key, value)

    def delete(self, key: int) -> bool:
        return self._map.delete(key)

    def get(self, key: int, default: Any = None) -> Any:
        return self._map.get(key, default)

    def first_in_range(self, low: int, high: int) -> Optional[Tuple[int, Any]]:
        return self._map.first_in_range(low, high)

    def items_in_range(self, low: int, high: int) -> Iterator[Tuple[int, Any]]:
        return self._map.items_in_range(low, high)

    def items(self) -> Iterator[Tuple[int, Any]]:
        return self._map.items()

    def __len__(self) -> int:
        return len(self._map)


class SortedListBackend:
    """Sorted Python list with binary-search probes (``O(n)`` updates)."""

    def __init__(self) -> None:
        self._keys: List[int] = []
        self._values: Dict[int, Any] = {}

    def insert(self, key: int, value: Any) -> None:
        if key not in self._values:
            bisect.insort(self._keys, key)
        self._values[key] = value

    def delete(self, key: int) -> bool:
        if key not in self._values:
            return False
        del self._values[key]
        idx = bisect.bisect_left(self._keys, key)
        self._keys.pop(idx)
        return True

    def get(self, key: int, default: Any = None) -> Any:
        return self._values.get(key, default)

    def first_in_range(self, low: int, high: int) -> Optional[Tuple[int, Any]]:
        idx = bisect.bisect_left(self._keys, low)
        if idx < len(self._keys) and self._keys[idx] <= high:
            key = self._keys[idx]
            return (key, self._values[key])
        return None

    def items_in_range(self, low: int, high: int) -> Iterator[Tuple[int, Any]]:
        idx = bisect.bisect_left(self._keys, low)
        while idx < len(self._keys) and self._keys[idx] <= high:
            key = self._keys[idx]
            yield (key, self._values[key])
            idx += 1

    def items(self) -> Iterator[Tuple[int, Any]]:
        for key in self._keys:
            yield (key, self._values[key])

    def __len__(self) -> int:
        return len(self._keys)


class FlatBackend:
    """Flattened sorted-array ordered map with amortised updates.

    Three parallel structures hold the map:

    * ``_main`` — a sorted key array probed by ``bisect`` (may contain
      tombstoned keys awaiting compaction);
    * ``_pending`` — a small sorted insert buffer, merged into ``_main`` when
      it outgrows ``O(√n)`` (the classic logarithmic-method bound: total merge
      work stays ``O(n√n)`` element moves, all at C speed via ``list.sort``'s
      run detection);
    * ``_dead`` — tombstoned keys still physically present in ``_main``;
      compaction rewrites ``_main`` once tombstones exceed a quarter of it.

    Probes consult both sorted arrays with two binary searches, skipping
    tombstones, so queries never pay a Python-level linear scan.
    """

    def __init__(self) -> None:
        self._main: List[int] = []
        self._pending: List[int] = []
        self._values: Dict[int, Any] = {}
        self._dead: Set[int] = set()
        self.merges = 0

    def _pending_cap(self) -> int:
        return 64 + isqrt(len(self._main))

    def _merge(self) -> None:
        main = self._main
        if self._dead:
            dead = self._dead
            main = [key for key in main if key not in dead]
            dead.clear()
        main.extend(self._pending)
        # Timsort detects the two pre-sorted runs, so this is a C-speed merge.
        main.sort()
        self._main = main
        self._pending.clear()
        self.merges += 1

    def insert(self, key: int, value: Any) -> None:
        if key in self._values:
            self._values[key] = value
            return
        self._values[key] = value
        if key in self._dead:
            # The key is still physically in _main; resurrect it in place.
            self._dead.discard(key)
            return
        bisect.insort(self._pending, key)
        if len(self._pending) > self._pending_cap():
            self._merge()

    def delete(self, key: int) -> bool:
        if key not in self._values:
            return False
        del self._values[key]
        idx = bisect.bisect_left(self._pending, key)
        if idx < len(self._pending) and self._pending[idx] == key:
            self._pending.pop(idx)
            return True
        self._dead.add(key)
        if len(self._dead) * 4 > len(self._main):
            self._merge()
        return True

    def get(self, key: int, default: Any = None) -> Any:
        return self._values.get(key, default)

    def first_in_range(self, low: int, high: int) -> Optional[Tuple[int, Any]]:
        best: Optional[int] = None
        main, dead = self._main, self._dead
        idx = bisect.bisect_left(main, low)
        while idx < len(main):
            key = main[idx]
            if key > high:
                break
            if key not in dead:
                best = key
                break
            idx += 1
        pending = self._pending
        idx = bisect.bisect_left(pending, low)
        if idx < len(pending):
            key = pending[idx]
            if key <= high and (best is None or key < best):
                best = key
        if best is None:
            return None
        return (best, self._values[best])

    def items_in_range(self, low: int, high: int) -> Iterator[Tuple[int, Any]]:
        main, pending, dead = self._main, self._pending, self._dead
        i = bisect.bisect_left(main, low)
        j = bisect.bisect_left(pending, low)
        while True:
            while i < len(main) and main[i] in dead:
                i += 1
            a = main[i] if i < len(main) else None
            b = pending[j] if j < len(pending) else None
            if a is None and b is None:
                return
            if b is None or (a is not None and a < b):
                key = a
                i += 1
            else:
                key = b
                j += 1
            if key > high:
                return
            yield (key, self._values[key])

    def items(self) -> Iterator[Tuple[int, Any]]:
        if not self._values:
            return iter(())
        low = self._main[0] if self._main else self._pending[0]
        if self._pending and (not self._main or self._pending[0] < low):
            low = self._pending[0]
        return self.items_in_range(low, max(self._main[-1] if self._main else low,
                                            self._pending[-1] if self._pending else low))

    def __len__(self) -> int:
        return len(self._values)


BACKEND_NAMES = ("skiplist", "avl", "sortedlist", "flat")

#: Default ordered-map backend of the routing stack (the flattened array).
DEFAULT_BACKEND = "flat"


def make_backend(name: str, seed: Optional[int] = None) -> OrderedMapBackend:
    """Instantiate a backend by name (``skiplist``, ``avl``, ``sortedlist`` or ``flat``)."""
    if name == "skiplist":
        return SkipListBackend(seed=seed)
    if name == "avl":
        return AVLBackend()
    if name == "sortedlist":
        return SortedListBackend()
    if name == "flat":
        return FlatBackend()
    raise ValueError(f"unknown SFC-array backend {name!r}; choose one of {BACKEND_NAMES}")


def ordered_map_backend_name(name: str) -> str:
    """Map a routing-layer backend choice to a plain ordered-map backend.

    The covering/dominance indexes need an :class:`OrderedMapBackend`;
    composite matching backends (``"sharded"``) have no ordered-map
    counterpart and delegate to the flat store their shards are built on.
    """
    return DEFAULT_BACKEND if name == "sharded" else name
