"""Served-deployment tests: client lifecycle, /metrics, malformed peers, shutdown."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.net import NetClient, NetError, NetTransport, fetch_metrics, serve_network
from repro.net.protocol import PROTOCOL_VERSION, FrameDecoder, encode_frame
from repro.obs.exposition import validate_prometheus_text
from repro.obs.registry import MetricsRegistry
from repro.pubsub.network import BrokerNetwork, tree_topology
from repro.workloads.scenarios import stock_market_scenario


@pytest.fixture
def served_network():
    """A 3-broker tree served over loopback TCP; yields (addresses, thread)."""
    schema = stock_market_scenario(num_subscriptions=0, num_events=0).schema
    network = BrokerNetwork.from_topology(
        schema,
        tree_topology(3),
        seed=3,
        transport=NetTransport(),
        metrics=MetricsRegistry(enabled=True),
    )
    addresses = {}
    ready = threading.Event()

    def on_ready(addr_map):
        addresses.update(addr_map)
        ready.set()

    thread = threading.Thread(target=serve_network, args=(network,), kwargs={"on_ready": on_ready})
    thread.start()
    assert ready.wait(timeout=10.0), "server never became ready"
    try:
        yield addresses, thread
    finally:
        if thread.is_alive():
            try:
                with NetClient(*addresses[0], timeout=5.0) as client:
                    client.shutdown()
            except NetError:
                pass
            thread.join(timeout=10.0)
        assert not thread.is_alive()


def _raw_exchange(address, blobs, expect_reply=True):
    """Send raw bytes to a server; return the decoded reply frames."""
    with socket.create_connection(address, timeout=5.0) as sock:
        sock.settimeout(5.0)
        for blob in blobs:
            sock.sendall(blob)
        decoder = FrameDecoder()
        frames = []
        if expect_reply:
            while not frames:
                data = sock.recv(65536)
                if not data:
                    break
                frames.extend(decoder.feed(data))
        return frames


class TestClientLifecycle:
    def test_subscribe_publish_unsubscribe_round_trip(self, served_network):
        addresses, _ = served_network
        with NetClient(*addresses[1]) as sub_client, NetClient(*addresses[2]) as pub_client:
            assert sub_client.ping() >= 0.0
            sub_id = sub_client.subscribe("alice", {"price": (10.0, 50.0)}, sub_id="a1")
            assert sub_id == "a1"
            delivered = pub_client.publish(
                {"price": 25.0, "volume": 100.0, "change_pct": 0.0}, event_id="e1"
            )
            assert delivered == {"alice"}
            assert sub_client.unsubscribe("alice", "a1") is True
            assert sub_client.unsubscribe("alice", "a1") is False
            delivered = pub_client.publish(
                {"price": 25.0, "volume": 100.0, "change_pct": 0.0}, event_id="e2"
            )
            assert delivered == set()

    def test_batch_commands(self, served_network):
        from repro.pubsub.subscription import Subscription

        addresses, _ = served_network
        schema = stock_market_scenario(num_subscriptions=0, num_events=0).schema
        with NetClient(*addresses[0]) as client:
            count = client.subscribe_batch(
                [
                    ("alice", Subscription(schema, {"price": (0.0, 100.0)}, sub_id="ba")),
                    ("bob", Subscription(schema, {"price": (50.0, 200.0)}, sub_id="bb")),
                ]
            )
            assert count == 2
            from repro.pubsub.subscription import Event

            [low, high] = client.publish_batch(
                [
                    Event(schema, {"price": 25.0, "volume": 1.0, "change_pct": 0.0},
                          event_id="be1"),
                    Event(schema, {"price": 150.0, "volume": 1.0, "change_pct": 0.0},
                          event_id="be2"),
                ]
            )
            assert low == {"alice"}
            assert high == {"bob"}
            flags = client.unsubscribe_batch(
                [("alice", "ba"), ("bob", "bb"), ("ghost", "gx")]
            )
            assert flags == [True, True, False]

    def test_mapping_forms_require_explicit_ids(self, served_network):
        from repro.net.protocol import ProtocolError

        addresses, _ = served_network
        with NetClient(*addresses[0]) as client:
            with pytest.raises(ProtocolError):
                client.subscribe("alice", {"price": (0.0, 1.0)})  # no sub_id
            with pytest.raises(ProtocolError):
                client.publish({"price": 1.0, "volume": 1.0, "change_pct": 0.0})

    def test_unknown_command_gets_error_frame(self, served_network):
        addresses, _ = served_network
        with NetClient(*addresses[0]) as client:
            with pytest.raises(NetError, match="unknown command"):
                client._request({"type": "frobnicate"})


class TestMetricsEndpoint:
    def test_scrape_validates_and_reflects_traffic(self, served_network):
        addresses, _ = served_network
        with NetClient(*addresses[1]) as client:
            client.subscribe("alice", {"price": (10.0, 50.0)}, sub_id="a1")
            client.publish(
                {"price": 20.0, "volume": 5.0, "change_pct": 0.0}, event_id="e1"
            )
        for broker_id, (host, port) in addresses.items():
            text = fetch_metrics(host, port)
            validate_prometheus_text(text)
            assert "repro_transport_counter_total" in text

    def test_unknown_path_is_404(self, served_network):
        addresses, _ = served_network
        host, port = addresses[0]
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.settimeout(5.0)
            sock.sendall(b"GET /nope HTTP/1.0\r\n\r\n")
            raw = b""
            while True:
                data = sock.recv(65536)
                if not data:
                    break
                raw += data
        assert b"404" in raw.split(b"\r\n", 1)[0]


class TestMalformedPeers:
    def test_version_mismatch_rejected_with_error_frame(self, served_network):
        addresses, _ = served_network
        bad_hello = encode_frame(
            {
                "type": "hello",
                "version": PROTOCOL_VERSION + 1,
                "role": "client",
                "node": "time-traveller",
            }
        )
        frames = _raw_exchange(addresses[0], [bad_hello])
        assert frames and frames[0]["type"] == "error"
        assert "version" in frames[0]["error"]

    def test_garbage_bytes_rejected_with_error_frame(self, served_network):
        addresses, _ = served_network
        # A length prefix claiming far more than MAX_FRAME_SIZE: rejected
        # before any body arrives.
        frames = _raw_exchange(addresses[0], [struct.pack(">I", 0xFFFFFFFF)])
        assert frames and frames[0]["type"] == "error"
        assert "length" in frames[0]["error"]

    def test_non_hello_first_frame_rejected(self, served_network):
        addresses, _ = served_network
        frames = _raw_exchange(addresses[0], [encode_frame({"type": "ping", "seq": 1})])
        assert frames and frames[0]["type"] == "error"
        assert "hello" in frames[0]["error"]

    def test_client_may_not_send_message_frames(self, served_network):
        addresses, _ = served_network
        from repro.net.protocol import ROLE_CLIENT, hello_frame

        blobs = [
            encode_frame(hello_frame(ROLE_CLIENT, "imposter")),
            encode_frame(
                {
                    "type": "message",
                    "kind": "event",
                    "sender": 9,
                    "receiver": 0,
                    "hops": 1,
                    "sent_at": 0.0,
                    "payload": {},
                }
            ),
        ]
        with socket.create_connection(addresses[0], timeout=5.0) as sock:
            sock.settimeout(5.0)
            for blob in blobs:
                sock.sendall(blob)
            decoder = FrameDecoder()
            collected = []
            while True:
                try:
                    data = sock.recv(65536)
                except socket.timeout:
                    break
                if not data:
                    break
                collected.extend(decoder.feed(data))
                if any(frame["type"] == "error" for frame in collected):
                    break
        # First reply is the server's hello; the message frame then draws an
        # error and the connection closes.
        assert collected and collected[0]["type"] == "hello"
        assert any(
            frame["type"] == "error" and "message frames" in frame["error"]
            for frame in collected
        )


class TestGracefulShutdown:
    def test_shutdown_stops_the_serve_loop(self, served_network):
        addresses, thread = served_network
        with NetClient(*addresses[0]) as client:
            client.subscribe("alice", {"price": (0.0, 100.0)}, sub_id="a1")
            client.shutdown()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
