"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's figures/claims (see DESIGN.md's
experiment index) by calling the corresponding driver in
``repro.analysis.experiments`` exactly once under pytest-benchmark timing, and
writes the resulting table to ``benchmarks/results/<experiment>.txt`` so the
numbers quoted in EXPERIMENTS.md can be re-derived from a single
``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory where benchmark-generated tables are stored."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Return a callable that saves a ResultTable to the results directory and echoes it.

    Besides the aligned-text rendering, the raw rows are written as
    ``BENCH_<name>.json`` (the machine-readable convention downstream tooling
    and the observability snapshots share).
    """
    from repro.obs.exposition import write_bench_json

    def _record(name: str, table) -> None:
        text = table.to_text()
        (results_dir / f"{name}.txt").write_text(text + "\n")
        write_bench_json(results_dir / f"BENCH_{name}.json", table.rows)
        print()
        print(text)

    return _record


@pytest.fixture
def run_once(benchmark):
    """Run an experiment driver exactly once under pytest-benchmark timing.

    The drivers are macro-experiments (seconds each), so repeating them for
    statistical rounds would make the harness needlessly slow; a single timed
    round still produces a benchmark entry with the elapsed time.
    """

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
