"""Metric collection for the publish/subscribe simulation.

The evaluation questions the paper motivates — how much routing-table growth
and subscription traffic does covering save, and how much of that saving does
*approximate* covering retain — are answered by counters collected here.  Each
broker owns a :class:`BrokerStats`; the network aggregates them into a
:class:`NetworkStats` snapshot after a workload has been replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from ..sim.transport import TransportStats

__all__ = ["BrokerStats", "NetworkStats", "TransportStats"]


@dataclass
class BrokerStats:
    """Per-broker counters."""

    subscriptions_received: int = 0
    subscriptions_stored: int = 0
    subscriptions_forwarded: int = 0
    subscriptions_suppressed: int = 0
    subscriptions_resynced: int = 0
    #: Suppressed subscriptions re-forwarded because their cover was withdrawn.
    promotions: int = 0
    covering_checks: int = 0
    #: Covering checks issued from inside a batch subscribe/withdraw pass.
    batch_covering_checks: int = 0
    covering_check_runs: int = 0
    events_received: int = 0
    events_forwarded: int = 0
    events_delivered_locally: int = 0
    match_tests: int = 0
    match_index_lookups: int = 0
    match_index_candidates: int = 0
    match_index_false_positives: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary (for reporting)."""
        return {
            "subscriptions_received": self.subscriptions_received,
            "subscriptions_stored": self.subscriptions_stored,
            "subscriptions_forwarded": self.subscriptions_forwarded,
            "subscriptions_suppressed": self.subscriptions_suppressed,
            "subscriptions_resynced": self.subscriptions_resynced,
            "promotions": self.promotions,
            "covering_checks": self.covering_checks,
            "batch_covering_checks": self.batch_covering_checks,
            "covering_check_runs": self.covering_check_runs,
            "events_received": self.events_received,
            "events_forwarded": self.events_forwarded,
            "events_delivered_locally": self.events_delivered_locally,
            "match_tests": self.match_tests,
            "match_index_lookups": self.match_index_lookups,
            "match_index_candidates": self.match_index_candidates,
            "match_index_false_positives": self.match_index_false_positives,
        }


@dataclass
class NetworkStats:
    """Aggregate counters over the whole broker network plus per-broker detail.

    Attributes
    ----------
    routing_table_entries:
        Total number of subscription entries stored across all brokers'
        routing tables — the quantity covering is designed to shrink.
    subscription_messages:
        Total subscription-propagation messages sent between brokers.
    events_delivered / events_missed:
        Delivery bookkeeping against the ground truth (a missed delivery can
        only occur if an unsound covering decision suppressed a needed
        subscription; the SFC approximate detector never causes one).
    transport:
        The transport's counters and distributions — delivery-latency and
        hop-count percentiles, queue-depth high-water marks, backpressure
        retries and drops.  Under the synchronous transport all latencies are
        zero; under :class:`~repro.sim.transport.SimTransport` these are the
        timing metrics of the simulated run.
    phase_timings:
        Wall-clock seconds the network spent in each subscription-lifecycle
        phase (``subscribe`` / ``unsubscribe`` and their ``*_batch``
        variants), measured around the broker call plus the flush that drains
        its propagation.
    profile_cache_hits / profile_cache_misses:
        Shared :class:`~repro.pubsub.subscription_store.ProfileCache`
        counters: a hit means a subscription's covering geometry was reused
        instead of recomputed.
    """

    per_broker: Dict[Hashable, BrokerStats] = field(default_factory=dict)
    routing_table_entries: int = 0
    subscription_messages: int = 0
    event_messages: int = 0
    events_delivered: int = 0
    events_missed: int = 0
    duplicate_deliveries: int = 0
    transport: Optional[TransportStats] = None
    phase_timings: Dict[str, float] = field(default_factory=dict)
    profile_cache_hits: int = 0
    profile_cache_misses: int = 0

    @property
    def total_covering_checks(self) -> int:
        return sum(stats.covering_checks for stats in self.per_broker.values())

    @property
    def total_suppressed(self) -> int:
        return sum(stats.subscriptions_suppressed for stats in self.per_broker.values())

    @property
    def total_promotions(self) -> int:
        return sum(stats.promotions for stats in self.per_broker.values())

    @property
    def total_batch_covering_checks(self) -> int:
        return sum(stats.batch_covering_checks for stats in self.per_broker.values())

    def transport_summary(self) -> Dict[str, float]:
        """Flattened transport metrics (empty when no transport stats were attached)."""
        if self.transport is None:
            return {}
        return self.transport.as_dict()

    def summary_rows(self) -> List[Dict[str, float]]:
        """Return one row per broker for tabular reporting."""
        rows: List[Dict[str, float]] = []
        for broker_id, stats in sorted(self.per_broker.items(), key=lambda kv: str(kv[0])):
            row: Dict[str, float] = {"broker": broker_id}  # type: ignore[dict-item]
            row.update(stats.as_dict())
            rows.append(row)
        return rows
