"""Tests for attribute schemas and quantisation."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.pubsub.schema import Attribute, AttributeSchema


def make_schema(order=8):
    return AttributeSchema(
        [Attribute("price", 0.0, 100.0), Attribute("volume", 0.0, 1000.0)], order=order
    )


class TestAttribute:
    def test_valid(self):
        a = Attribute("price", 0.0, 10.0)
        assert a.span == 10.0

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            Attribute("price", 5.0, 5.0)
        with pytest.raises(ValueError):
            Attribute("price", 5.0, 1.0)

    def test_empty_name(self):
        with pytest.raises(ValueError):
            Attribute("", 0.0, 1.0)


class TestSchemaConstruction:
    def test_basic(self):
        schema = make_schema()
        assert schema.names == ("price", "volume")
        assert schema.num_attributes == 2
        assert schema.max_cell == 255
        assert schema.attribute("volume").high == 1000.0
        assert schema.position("volume") == 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            AttributeSchema([Attribute("a", 0, 1), Attribute("a", 0, 2)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AttributeSchema([])

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            AttributeSchema([Attribute("a", 0, 1)], order=0)

    def test_unknown_attribute(self):
        schema = make_schema()
        with pytest.raises(KeyError):
            schema.attribute("nope")


class TestValueQuantisation:
    def test_endpoints(self):
        schema = make_schema()
        assert schema.quantize_value("price", 0.0) == 0
        assert schema.quantize_value("price", 100.0) == 255

    def test_clamping(self):
        schema = make_schema()
        assert schema.quantize_value("price", -5.0) == 0
        assert schema.quantize_value("price", 500.0) == 255

    def test_dequantize_roundtrip_is_close(self):
        schema = make_schema(order=10)
        for value in (0.0, 13.7, 50.0, 99.9):
            cell = schema.quantize_value("price", value)
            assert abs(schema.dequantize_value("price", cell) - value) < 0.1

    def test_dequantize_validates_cell(self):
        schema = make_schema()
        with pytest.raises(ValueError):
            schema.dequantize_value("price", 256)

    def test_quantize_event(self):
        schema = make_schema()
        cells = schema.quantize_event({"price": 50.0, "volume": 500.0})
        assert len(cells) == 2
        assert 126 <= cells[0] <= 129

    def test_quantize_event_missing_attribute(self):
        schema = make_schema()
        with pytest.raises(ValueError):
            schema.quantize_event({"price": 50.0})

    @given(st.floats(0.0, 100.0))
    def test_quantisation_monotone(self, value):
        schema = make_schema()
        cell = schema.quantize_value("price", value)
        assert 0 <= cell <= schema.max_cell


class TestRangeQuantisation:
    def test_conservative_rounding(self):
        """Range endpoints round outwards so subscriptions never narrow."""
        schema = make_schema(order=4)  # 16 cells over [0, 100] → cell ≈ 6.67 wide
        lo, hi = schema.quantize_range("price", 10.0, 20.0)
        assert schema.dequantize_value("price", lo) <= 10.0
        assert schema.dequantize_value("price", hi) >= 20.0

    def test_invalid_range(self):
        schema = make_schema()
        with pytest.raises(ValueError):
            schema.quantize_range("price", 20.0, 10.0)

    def test_constraints_fill_unconstrained_attributes(self):
        schema = make_schema()
        ranges = schema.quantize_constraints({"price": (10.0, 20.0)})
        assert len(ranges) == 2
        assert ranges[1] == (0, schema.max_cell)

    def test_constraints_unknown_attribute_rejected(self):
        schema = make_schema()
        with pytest.raises(ValueError):
            schema.quantize_constraints({"cost": (1.0, 2.0)})

    @given(st.floats(0.0, 100.0), st.floats(0.0, 100.0))
    def test_quantized_range_contains_quantized_values(self, a, b):
        """Any value inside the original range maps to a cell inside the quantised range."""
        low, high = min(a, b), max(a, b)
        schema = make_schema(order=6)
        lo_cell, hi_cell = schema.quantize_range("price", low, high)
        mid = (low + high) / 2
        assert lo_cell <= schema.quantize_value("price", mid) <= hi_cell
