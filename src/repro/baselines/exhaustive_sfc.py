"""Exhaustive SFC-based covering detection (the paper's point of comparison).

This baseline runs the *same* SFC machinery as the approximate detector but
never truncates the search: every standard cube of the greedy decomposition of
the dominance region is probed until either a witness turns up or the region
is exhausted.  Theorem 4.1 shows the number of runs this can require grows as
``(2^{α−1}·ℓ)^{d−1}`` with the shortest side length ℓ, which is exactly the
blow-up the ε-approximate query avoids.

A cube budget protects callers from pathological queries; when it is hit the
query reports that it was truncated so benchmarks can distinguish "completed
exhaustively" from "gave up".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Sequence, Tuple

from ..core.approx_dominance import ApproximateDominanceIndex, DominanceQueryResult
from ..geometry.transform import DominanceTransform, Range

__all__ = ["ExhaustiveSFCCoveringDetector"]


@dataclass
class ExhaustiveSFCCoveringDetector:
    """Exact covering detection via exhaustive Z-curve dominance search."""

    attributes: int
    attribute_order: int
    backend: str = "avl"
    cube_budget: int = 1_000_000
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.transform = DominanceTransform(self.attributes, self.attribute_order)
        self.index = ApproximateDominanceIndex(
            universe=self.transform.universe,
            epsilon=0.0,
            backend=self.backend,
            cube_budget=self.cube_budget,
            seed=self.seed,
        )
        self._subscriptions: Dict[Hashable, Tuple[Range, ...]] = {}

    # ---------------------------------------------------------------- updates
    def __len__(self) -> int:
        return len(self._subscriptions)

    def __contains__(self, sub_id: Hashable) -> bool:
        return sub_id in self._subscriptions

    def add_subscription(self, sub_id: Hashable, ranges: Sequence[Range]) -> None:
        """Store a subscription under ``sub_id`` (replacing any previous one)."""
        validated = self.transform.validate_ranges(ranges)
        self._subscriptions[sub_id] = validated
        self.index.insert(sub_id, self.transform.to_point(validated))

    def remove_subscription(self, sub_id: Hashable) -> bool:
        """Remove a subscription; return True when it was present."""
        if sub_id not in self._subscriptions:
            return False
        del self._subscriptions[sub_id]
        self.index.remove(sub_id)
        return True

    def subscriptions(self) -> Dict[Hashable, Tuple[Range, ...]]:
        """Return a copy of all stored subscriptions."""
        return dict(self._subscriptions)

    # ---------------------------------------------------------------- queries
    def find_covering(
        self, ranges: Sequence[Range], exclude: Optional[Hashable] = None
    ) -> Optional[Hashable]:
        """Return the id of any stored subscription covering ``ranges``, or ``None``."""
        return self.find_covering_with_stats(ranges, exclude=exclude)[0]

    def find_covering_with_stats(
        self, ranges: Sequence[Range], exclude: Optional[Hashable] = None
    ) -> Tuple[Optional[Hashable], DominanceQueryResult]:
        """Like :meth:`find_covering` but also return the dominance-query accounting."""
        point = self.transform.to_point(ranges)
        removed_point = None
        if exclude is not None and exclude in self._subscriptions:
            removed_point = self.transform.to_point(self._subscriptions[exclude])
            self.index.remove(exclude)
        try:
            result = self.index.exhaustive_query(point)
        finally:
            if removed_point is not None:
                self.index.insert(exclude, removed_point)
        covering_id = result.item.item_id if result.item is not None else None
        return covering_id, result

    def is_covered(self, ranges: Sequence[Range]) -> bool:
        """Return True when some stored subscription covers ``ranges``."""
        return self.find_covering(ranges) is not None
