"""Content-based publish/subscribe substrate: schema, subscriptions, brokers, network."""

from .broker import LOCAL_INTERFACE, Broker, ForwardDecision
from .client import Publisher, Subscriber
from .network import (
    BrokerNetwork,
    DeliveryRecord,
    chain_topology,
    star_topology,
    tree_topology,
)
from .routing_table import (
    ApproximateCoveringStrategy,
    CoveringStrategy,
    ExactCoveringStrategy,
    InterfaceTable,
    NoCoveringStrategy,
    ProbabilisticCoveringStrategy,
    RoutingTable,
    make_covering_strategy,
)
from .schema import Attribute, AttributeSchema
from .stats import BrokerStats, NetworkStats
from .subscription import Event, Subscription, make_event, make_subscription

__all__ = [
    "LOCAL_INTERFACE",
    "Broker",
    "ForwardDecision",
    "Publisher",
    "Subscriber",
    "BrokerNetwork",
    "DeliveryRecord",
    "chain_topology",
    "star_topology",
    "tree_topology",
    "ApproximateCoveringStrategy",
    "CoveringStrategy",
    "ExactCoveringStrategy",
    "InterfaceTable",
    "NoCoveringStrategy",
    "ProbabilisticCoveringStrategy",
    "RoutingTable",
    "make_covering_strategy",
    "Attribute",
    "AttributeSchema",
    "BrokerStats",
    "NetworkStats",
    "Event",
    "Subscription",
    "make_event",
    "make_subscription",
]
