"""A deterministic discrete-event simulation kernel.

The kernel is a priority queue of timestamped actions.  :meth:`EventKernel.run`
pops the earliest action, advances the simulated clock to its timestamp and
executes it; actions may schedule further actions (that is how a message
arrival triggers queue draining, retries and forwarding in the simulated
transport).

Determinism is a hard requirement — the broker-network experiments assert that
two runs with the same seed produce byte-identical delivery logs — so ties are
broken reproducibly: every scheduled action carries a tie-break value drawn
from a seeded RNG (so simultaneous actions are not biased toward insertion
order) and, as a last resort, a monotonically increasing sequence number.
Nothing in the kernel reads the wall clock.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, List, Optional, Tuple

__all__ = ["EventKernel"]

Action = Callable[[], None]


class EventKernel:
    """A seeded, deterministic discrete-event scheduler.

    Parameters
    ----------
    seed:
        Seeds the tie-breaking RNG.  Two kernels built with the same seed and
        fed the same schedule execute actions in exactly the same order.
    """

    def __init__(self, seed: Optional[int] = 0) -> None:
        self._rng = random.Random(seed)
        self._heap: List[Tuple[float, float, int, Action]] = []
        self._seq = 0
        self.now = 0.0
        self.executed = 0

    # ------------------------------------------------------------- scheduling
    def schedule_at(self, time: float, action: Action) -> None:
        """Schedule ``action`` to run at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time} in the past (now={self.now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, self._rng.random(), self._seq, action))

    def schedule(self, delay: float, action: Action) -> None:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.schedule_at(self.now + delay, action)

    @property
    def pending(self) -> int:
        """Number of actions waiting to execute."""
        return len(self._heap)

    # -------------------------------------------------------------- execution
    def step(self) -> bool:
        """Execute the earliest pending action; return False when none is left."""
        if not self._heap:
            return False
        time, _tie, _seq, action = heapq.heappop(self._heap)
        self.now = time
        self.executed += 1
        action()
        return True

    def run(self, until: Optional[float] = None, max_steps: Optional[int] = None) -> int:
        """Run until the queue is empty (or ``until``/``max_steps`` is reached).

        Returns the number of actions executed by this call.  With ``until``
        the clock still advances to ``until`` when earlier actions ran out, so
        repeated bounded runs observe a monotonic clock.
        """
        steps = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            if max_steps is not None and steps >= max_steps:
                break
            self.step()
            steps += 1
        if until is not None and self.now < until:
            self.now = until
        return steps
