"""The broker overlay network: topology, propagation, event routing and auditing.

:class:`BrokerNetwork` wires :class:`Broker` instances into an acyclic overlay
(publish/subscribe systems such as Siena and REBECA use tree or per-source
tree topologies; an acyclic overlay means reverse-path forwarding needs no
duplicate suppression).  The network provides the synchronous "transport":
subscription and event messages between brokers are delivered immediately and
counted.

Beyond simulation the network audits correctness: for every published event it
computes the ground-truth set of subscribers whose subscriptions match and
compares it with the deliveries that actually happened, so experiments can
verify the paper's safety claim — approximate covering never loses events —
and observe that an *unsound* strategy (the probabilistic baseline) can.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .broker import Broker
from .match_index import DEFAULT_RUN_BUDGET
from .routing_table import DEFAULT_CUBE_BUDGET
from .schema import AttributeSchema
from .stats import NetworkStats
from .subscription import Event, Subscription

__all__ = ["BrokerNetwork", "DeliveryRecord", "tree_topology", "chain_topology", "star_topology"]


def tree_topology(num_brokers: int, branching: int = 2) -> List[Tuple[int, int]]:
    """Return the edge list of a balanced tree with ``num_brokers`` nodes."""
    if num_brokers <= 0:
        raise ValueError(f"num_brokers must be positive, got {num_brokers}")
    edges = []
    for child in range(1, num_brokers):
        parent = (child - 1) // branching
        edges.append((parent, child))
    return edges


def chain_topology(num_brokers: int) -> List[Tuple[int, int]]:
    """Return the edge list of a linear chain of brokers."""
    return [(i, i + 1) for i in range(num_brokers - 1)]


def star_topology(num_brokers: int) -> List[Tuple[int, int]]:
    """Return the edge list of a star: broker 0 in the centre."""
    return [(0, i) for i in range(1, num_brokers)]


@dataclass(frozen=True)
class DeliveryRecord:
    """One delivery of an event to a local subscriber."""

    client_id: Hashable
    subscription_id: Hashable
    event_id: Hashable


@dataclass
class BrokerNetwork:
    """A simulated network of content-based publish/subscribe brokers.

    Parameters
    ----------
    schema:
        Shared message schema.
    covering:
        Covering strategy used by every broker (``"none"``, ``"exact"``,
        ``"approximate"``, ``"probabilistic"``).
    epsilon:
        Approximation parameter for the approximate strategy.
    """

    schema: AttributeSchema
    covering: str = "approximate"
    epsilon: float = 0.05
    backend: str = "avl"
    samples: int = 8
    seed: Optional[int] = None
    cube_budget: int = DEFAULT_CUBE_BUDGET
    matching: str = "linear"
    run_budget: int = DEFAULT_RUN_BUDGET
    brokers: Dict[Hashable, Broker] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.graph = nx.Graph()
        self.subscription_messages = 0
        self.unsubscription_messages = 0
        self.event_messages = 0
        self.deliveries: List[DeliveryRecord] = []
        self._client_home: Dict[Hashable, Hashable] = {}
        self._client_subscriptions: Dict[Hashable, List[Subscription]] = {}

    # ---------------------------------------------------------------- topology
    def add_broker(self, broker_id: Hashable) -> Broker:
        """Create and register a broker."""
        if broker_id in self.brokers:
            raise ValueError(f"broker {broker_id!r} already exists")
        broker = Broker(
            broker_id=broker_id,
            schema=self.schema,
            covering=self.covering,
            epsilon=self.epsilon,
            backend=self.backend,
            samples=self.samples,
            seed=self.seed,
            cube_budget=self.cube_budget,
            matching=self.matching,
            run_budget=self.run_budget,
        )
        broker.attach_transport(
            self._transport_subscription,
            self._transport_event,
            self._record_delivery,
            send_unsubscription=self._transport_unsubscription,
        )
        self.brokers[broker_id] = broker
        self.graph.add_node(broker_id)
        return broker

    def connect(self, a: Hashable, b: Hashable) -> None:
        """Connect two brokers with a bidirectional overlay link.

        The overlay must stay acyclic; adding a link that would close a cycle
        raises ``ValueError``.
        """
        if a not in self.brokers or b not in self.brokers:
            raise ValueError(f"both brokers must exist before connecting ({a!r}, {b!r})")
        if self.graph.has_edge(a, b):
            return
        if nx.has_path(self.graph, a, b):
            raise ValueError(
                f"connecting {a!r} and {b!r} would create a cycle; the overlay must be a tree"
            )
        self.graph.add_edge(a, b)
        self.brokers[a].connect(b)
        self.brokers[b].connect(a)

    @classmethod
    def from_topology(
        cls,
        schema: AttributeSchema,
        edges: Iterable[Tuple[Hashable, Hashable]],
        covering: str = "approximate",
        epsilon: float = 0.05,
        backend: str = "avl",
        samples: int = 8,
        seed: Optional[int] = None,
        cube_budget: int = DEFAULT_CUBE_BUDGET,
        matching: str = "linear",
        run_budget: int = DEFAULT_RUN_BUDGET,
    ) -> "BrokerNetwork":
        """Build a network from an edge list (nodes are created on first sight)."""
        network = cls(
            schema=schema,
            covering=covering,
            epsilon=epsilon,
            backend=backend,
            samples=samples,
            seed=seed,
            cube_budget=cube_budget,
            matching=matching,
            run_budget=run_budget,
        )
        for a, b in edges:
            if a not in network.brokers:
                network.add_broker(a)
            if b not in network.brokers:
                network.add_broker(b)
            network.connect(a, b)
        if not network.brokers:
            raise ValueError("topology has no edges; add at least one broker pair")
        return network

    # ---------------------------------------------------------------- transport
    def _transport_subscription(self, sender: Hashable, receiver: Hashable, subscription: Subscription) -> None:
        self.subscription_messages += 1
        self.brokers[receiver].receive_subscription(sender, subscription)

    def _transport_unsubscription(self, sender: Hashable, receiver: Hashable, sub_id: Hashable) -> None:
        self.unsubscription_messages += 1
        self.brokers[receiver].receive_unsubscription(sender, sub_id)

    def _transport_event(self, sender: Hashable, receiver: Hashable, event: Event) -> None:
        self.event_messages += 1
        self.brokers[receiver].receive_event(sender, event)

    def _record_delivery(self, client_id: Hashable, subscription_id: Hashable, event: Event) -> None:
        self.deliveries.append(DeliveryRecord(client_id, subscription_id, event.event_id))

    # ------------------------------------------------------------------- usage
    def subscribe(self, broker_id: Hashable, client_id: Hashable, subscription: Subscription) -> None:
        """Register a client subscription at ``broker_id`` and propagate it network-wide."""
        if broker_id not in self.brokers:
            raise ValueError(f"unknown broker {broker_id!r}")
        self._client_home[client_id] = broker_id
        self._client_subscriptions.setdefault(client_id, []).append(subscription)
        self.brokers[broker_id].subscribe_local(client_id, subscription)

    def unsubscribe(self, client_id: Hashable, sub_id: Hashable) -> bool:
        """Withdraw a previously registered client subscription network-wide.

        Returns True when the subscription existed.  The withdrawal is
        propagated with the same covering-aware logic the brokers use, so
        subscriptions that were suppressed because this one covered them are
        re-forwarded where needed and no remaining subscriber loses events.
        """
        broker_id = self._client_home.get(client_id)
        if broker_id is None:
            return False
        removed = self.brokers[broker_id].unsubscribe_local(client_id, sub_id)
        if removed:
            subscriptions = self._client_subscriptions.get(client_id, [])
            self._client_subscriptions[client_id] = [
                sub for sub in subscriptions if sub.sub_id != sub_id
            ]
        return removed

    def publish(self, broker_id: Hashable, event: Event) -> Set[Hashable]:
        """Publish ``event`` at ``broker_id``; return the set of clients it was delivered to."""
        if broker_id not in self.brokers:
            raise ValueError(f"unknown broker {broker_id!r}")
        before = len(self.deliveries)
        self.brokers[broker_id].publish_local(event)
        return {record.client_id for record in self.deliveries[before:]}

    def publish_batch(self, broker_id: Hashable, events: Sequence[Event]) -> List[Set[Hashable]]:
        """Publish a batch of events at ``broker_id``; return per-event delivery sets.

        Equivalent to calling :meth:`publish` per event, but under SFC
        matching the events' curve keys are computed in one amortised pass at
        the publishing broker before routing starts.
        """
        if broker_id not in self.brokers:
            raise ValueError(f"unknown broker {broker_id!r}")
        results: List[Set[Hashable]] = []
        before = len(self.deliveries)
        for _ in self.brokers[broker_id].publish_batch_iter(events):
            results.append({record.client_id for record in self.deliveries[before:]})
            before = len(self.deliveries)
        return results

    # ---------------------------------------------------------------- auditing
    def expected_recipients(self, event: Event) -> Set[Hashable]:
        """Ground truth: every client with at least one subscription matching ``event``."""
        return {
            client_id
            for client_id, subscriptions in self._client_subscriptions.items()
            if any(sub.matches(event) for sub in subscriptions)
        }

    def publish_and_audit(self, broker_id: Hashable, event: Event) -> Tuple[Set[Hashable], Set[Hashable]]:
        """Publish an event and return ``(missed_clients, extra_clients)`` against ground truth."""
        delivered = self.publish(broker_id, event)
        expected = self.expected_recipients(event)
        return expected - delivered, delivered - expected

    # ------------------------------------------------------------------- stats
    def routing_table_entries(self) -> int:
        """Total subscription entries stored across all brokers."""
        return sum(broker.routing_table_size() for broker in self.brokers.values())

    def collect_stats(self, events: Sequence[Tuple[Hashable, Event]] = ()) -> NetworkStats:
        """Aggregate broker counters into a :class:`NetworkStats` snapshot.

        ``events`` optionally replays an audit: each ``(broker_id, event)``
        pair is published and checked against the ground truth, contributing
        to the delivered/missed counters.
        """
        stats = NetworkStats(
            per_broker={broker_id: broker.stats for broker_id, broker in self.brokers.items()},
            routing_table_entries=self.routing_table_entries(),
            subscription_messages=self.subscription_messages,
            event_messages=self.event_messages,
        )
        for broker_id, event in events:
            missed, extra = self.publish_and_audit(broker_id, event)
            expected = self.expected_recipients(event)
            stats.events_delivered += len(expected) - len(missed)
            stats.events_missed += len(missed)
            stats.duplicate_deliveries += len(extra)
        # The match-index work counters live in the per-interface indexes and
        # are pulled into BrokerStats on read rather than per event.
        for broker in self.brokers.values():
            broker.sync_match_stats()
        return stats
