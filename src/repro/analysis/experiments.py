"""Experiment drivers: the measurements behind every benchmark and EXPERIMENTS.md.

Each function here runs one of the experiments listed in DESIGN.md's
experiment index and returns a :class:`repro.analysis.reporting.ResultTable`
of rows.  The pytest-benchmark files in ``benchmarks/`` call these drivers (so
that timings and the regenerated tables come from the same code), and the
examples reuse them for human-readable output.

Every driver takes an explicit ``seed`` so results are reproducible, and keeps
problem sizes laptop-scale by default; callers can pass larger sizes when more
fidelity is wanted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..baselines.linear_scan import LinearScanCoveringDetector
from ..baselines.probabilistic import ProbabilisticCoveringDetector
from ..core.approx_dominance import ApproximateDominanceIndex
from ..core.bounds import (
    adversarial_rectangle,
    theorem31_run_bound,
    theorem41_lower_bound,
)
from ..core.covering import ApproximateCoveringDetector
from ..core.decomposition import (
    count_cubes_extremal,
    greedy_decomposition,
    level_census,
    truncation_bits,
)
from ..geometry.rect import ExtremalRectangle, Rectangle
from ..geometry.universe import Universe
from ..index.kdtree import KDTree
from ..index.range_tree import RangeTree
from ..obs.exposition import snapshot as metrics_snapshot
from ..obs.registry import MetricsRegistry
from ..obs.trace import TraceLog
from ..pubsub.network import BrokerNetwork, chain_topology, star_topology, tree_topology
from ..pubsub.schema import Attribute, AttributeSchema
from ..pubsub.subscription import Event, Subscription
from ..sfc.hilbert import HilbertCurve
from ..sfc.runs import RunProfile
from ..sfc.zorder import ZOrderCurve
from ..workloads.generators import EventWorkload, SubscriptionSpec, SubscriptionWorkload
from .reporting import ResultTable, format_critical_path, format_trace_tree

__all__ = [
    "MetricsScenarioResult",
    "run_metrics_scenario",
    "run_fig1_experiment",
    "run_fig2_experiment",
    "run_thm31_experiment",
    "run_lem32_experiment",
    "run_thm41_experiment",
    "run_approx_vs_exhaustive_experiment",
    "run_recall_experiment",
    "run_pubsub_experiment",
    "run_sim_latency_experiment",
    "run_topology_scale_experiment",
    "run_subscription_churn_experiment",
    "run_event_matching_experiment",
    "run_match_scale_experiment",
    "run_curve_ablation_experiment",
    "run_auto_tuning_experiment",
    "run_dimensionality_experiment",
    "run_throughput_experiment",
]


# --------------------------------------------------------------------------- FIG1
def run_fig1_experiment(order: int = 6) -> ResultTable:
    """FIG1: runs needed for the same rectangle under the Hilbert vs the Z curve.

    The paper's Figure 1 shows an ``Sx × Sy`` rectangle that decomposes into
    two runs on the Hilbert curve and three on the Z curve.  We reproduce the
    canonical instance (the upper half of a quadrant, straddling the vertical
    mid-line) plus a small sweep of similar rectangles.
    """
    table = ResultTable("FIG1: runs per curve for the same rectangle")
    universe = Universe(dims=2, order=order)
    z = ZOrderCurve(universe)
    h = HilbertCurve(universe)
    side = universe.side
    # "figure-1" reproduces the paper's headline numbers exactly: an Sx × Sy
    # rectangle that straddles a standard-cube boundary needs three runs on the
    # Z curve but only two on the Hilbert curve.  The other instances show the
    # same Hilbert ≤ Z tendency on larger regions.
    instances = {
        "figure-1": Rectangle((0, 1), (1, 2)),
        "wide-strip": Rectangle((0, side // 4), (side - 1, side // 2 - 1)),
        "offset-square": Rectangle((side // 4, side // 4), (3 * side // 4 - 1, 3 * side // 4 - 1)),
    }
    for name, rect in instances.items():
        z_runs = z.brute_force_runs(rect)
        h_runs = h.brute_force_runs(rect)
        table.add(
            instance=name,
            width=rect.side_lengths[0],
            height=rect.side_lengths[1],
            z_runs=z_runs,
            hilbert_runs=h_runs,
        )
    return table


# --------------------------------------------------------------------------- FIG2
def run_fig2_experiment(order: int = 9) -> ResultTable:
    """FIG2: the 256×256 vs 257×257 extremal query regions of the paper's Figure 2."""
    table = ResultTable("FIG2: runs for the two example point-dominance queries (Z curve)")
    universe = Universe(dims=2, order=order)
    z = ZOrderCurve(universe)
    for lengths in [(256, 256), (257, 257)]:
        region = ExtremalRectangle(universe, lengths)
        profile = RunProfile.from_cubes(z, greedy_decomposition(region))
        smallest_fraction = (
            profile.run_volumes[-1] / profile.total_volume if profile.run_volumes else 0.0
        )
        table.add(
            region=f"{lengths[0]}x{lengths[1]}",
            cubes=profile.num_cubes,
            runs=profile.num_runs,
            largest_run_fraction=round(profile.largest_run_fraction, 6),
            smallest_run_fraction=round(smallest_fraction, 6),
        )
    return table


# ------------------------------------------------------------------------- THM3.1
def run_thm31_experiment(
    dims: int = 4,
    order: int = 16,
    epsilon: float = 0.05,
    alpha: int = 0,
    side_bit_lengths: Sequence[int] = (6, 8, 10, 12, 14, 16),
) -> ResultTable:
    """THM3.1: approximate-query cost is independent of the query side length.

    For each side bit-length ``b`` we build an all-ones extremal rectangle
    (the worst case of Lemma 3.6) with aspect ratio ``alpha``, count the cubes
    the approximate search would touch (classes down to the ``1 − ε`` coverage
    level), and compare with both the exhaustive cube count and the analytic
    Theorem 3.1 bound.
    """
    table = ResultTable("THM3.1: approximate vs exhaustive cube counts as the region grows")
    universe = Universe(dims=dims, order=order)
    m = truncation_bits(dims, epsilon)
    bound = theorem31_run_bound(dims, alpha, epsilon)
    for bits in side_bit_lengths:
        if bits > order or bits - alpha < 1:
            continue
        long_side = (1 << bits) - 1
        short_side = (1 << (bits - alpha)) - 1
        lengths = tuple([long_side] * (dims - 1) + [short_side])
        region = ExtremalRectangle(universe, lengths)
        census = level_census(region)
        total_volume = region.volume
        target = (1 - epsilon) * total_volume
        approx_cubes = 0
        covered = 0
        for cls in census:
            if covered >= target:
                break
            approx_cubes += cls.num_cubes
            covered = cls.cumulative_volume
        exhaustive_cubes = count_cubes_extremal(region)
        table.add(
            side_bits=bits,
            shortest_side=short_side,
            epsilon=epsilon,
            truncation_bits=m,
            approx_cubes=approx_cubes,
            exhaustive_cubes=exhaustive_cubes,
            theorem31_bound=bound,
            coverage=round(covered / total_volume, 6),
        )
    return table


# ------------------------------------------------------------------------- LEM3.2
def run_lem32_experiment(
    dims: int = 4,
    order: int = 16,
    epsilons: Sequence[float] = (0.2, 0.1, 0.05, 0.01),
    trials: int = 50,
    seed: int = 1,
) -> ResultTable:
    """LEM3.2: measured volume retained by truncation vs the 1 − ε guarantee."""
    from ..workloads.generators import random_extremal_lengths

    table = ResultTable("LEM3.2: volume coverage of the truncated query region")
    universe = Universe(dims=dims, order=order)
    for epsilon in epsilons:
        m = truncation_bits(dims, epsilon)
        worst = 1.0
        total = 0.0
        for trial in range(trials):
            lengths = random_extremal_lengths(dims, order, alpha=0, seed=seed + trial)
            region = ExtremalRectangle(universe, lengths)
            truncated = region.truncated(m)
            fraction = truncated.volume / region.volume
            worst = min(worst, fraction)
            total += fraction
        table.add(
            epsilon=epsilon,
            truncation_bits=m,
            guaranteed_fraction=round(1 - epsilon, 6),
            mean_measured_fraction=round(total / trials, 6),
            worst_measured_fraction=round(worst, 6),
        )
    return table


# ------------------------------------------------------------------------- THM4.1
def run_thm41_experiment(
    dims: int = 2,
    order: int = 14,
    alpha: int = 1,
    gammas: Sequence[int] = (3, 4, 5, 6, 7, 8),
) -> ResultTable:
    """THM4.1: exhaustive run count on the adversarial rectangle vs the lower bound."""
    table = ResultTable("THM4.1: exhaustive cost grows with the shortest side (adversarial family)")
    universe = Universe(dims=dims, order=order)
    z = ZOrderCurve(universe)
    for gamma in gammas:
        if gamma + alpha > order:
            continue
        region = adversarial_rectangle(universe, alpha, gamma)
        shortest = min(region.lengths)
        cubes = greedy_decomposition(region)
        profile = RunProfile.from_cubes(z, cubes)
        bound = theorem41_lower_bound(dims, alpha, shortest)
        table.add(
            gamma=gamma,
            shortest_side=shortest,
            exhaustive_runs=profile.num_runs,
            exhaustive_cubes=profile.num_cubes,
            theorem41_lower_bound=bound,
            approx_bound_eps_0_05=theorem31_run_bound(dims, alpha, 0.05),
        )
    return table


# ----------------------------------------------------------------- approx vs exhaustive
def run_approx_vs_exhaustive_experiment(
    attributes: int = 1,
    order: int = 12,
    num_subscriptions: int = 2_000,
    num_queries: int = 200,
    epsilons: Sequence[float] = (0.0, 0.01, 0.05, 0.1, 0.2),
    width_fraction: float = 0.2,
    seed: int = 3,
) -> ResultTable:
    """E-COST: runs probed and wall-clock per covering query, approximate vs exhaustive."""
    table = ResultTable("E-COST: covering-query cost vs epsilon")
    workload = SubscriptionWorkload(
        attributes=attributes,
        attribute_order=order,
        width_fraction=width_fraction,
        seed=seed,
    )
    stored = workload.generate(num_subscriptions, prefix="stored")
    queries = workload.generate(num_queries, prefix="query")

    detector = ApproximateCoveringDetector(
        attributes=attributes, attribute_order=order, epsilon=0.05, cube_budget=200_000
    )
    linear = LinearScanCoveringDetector(attributes, order)
    for spec in stored:
        detector.add_subscription(spec.sub_id, spec.ranges)
        linear.add_subscription(spec.sub_id, spec.ranges)

    truth = {spec.sub_id: linear.find_covering(spec.ranges) is not None for spec in queries}
    covered_queries = sum(1 for v in truth.values() if v)

    for epsilon in epsilons:
        runs_total = 0
        found = 0
        start = time.perf_counter()
        for spec in queries:
            result = detector.find_covering(spec.ranges, epsilon=epsilon)
            runs_total += result.query.runs_probed
            if result.covered:
                found += 1
        elapsed = time.perf_counter() - start
        recall = found / covered_queries if covered_queries else 1.0
        table.add(
            epsilon=epsilon,
            mode="exhaustive" if epsilon == 0.0 else "approximate",
            mean_runs_probed=round(runs_total / num_queries, 2),
            queries_per_second=round(num_queries / elapsed, 1),
            covering_found=found,
            covering_exists=covered_queries,
            recall=round(recall, 4),
        )

    # Linear-scan reference row.
    start = time.perf_counter()
    for spec in queries:
        linear.find_covering(spec.ranges)
    elapsed = time.perf_counter() - start
    table.add(
        epsilon="-",
        mode="linear-scan",
        mean_runs_probed="-",
        queries_per_second=round(num_queries / elapsed, 1),
        covering_found=covered_queries,
        covering_exists=covered_queries,
        recall=1.0,
    )
    return table


# ---------------------------------------------------------------------- recall vs eps
def _mixed_width_workload(
    attributes: int,
    order: int,
    count: int,
    narrow_fraction: float,
    narrow_width: float,
    wide_width: float,
    seed: int,
    prefix: str,
) -> List["SubscriptionSpec"]:
    """Generate a workload mixing narrow subscriptions with a share of wide ones.

    Real routers see both: many specific subscriptions plus a few broad
    "catch-most" ones, and the broad ones are what covering exploits.  The
    returned list is shuffled so that broad and narrow subscriptions arrive
    interleaved — arrival order matters for covering-based suppression.
    """
    import random as _random

    narrow = SubscriptionWorkload(
        attributes=attributes, attribute_order=order, width_fraction=narrow_width, seed=seed
    )
    wide = SubscriptionWorkload(
        attributes=attributes,
        attribute_order=order,
        width_fraction=wide_width,
        width_jitter=0.3,
        seed=seed + 1,
    )
    num_narrow = int(count * narrow_fraction)
    specs = narrow.generate(num_narrow, prefix=f"{prefix}-narrow")
    specs += wide.generate(count - num_narrow, prefix=f"{prefix}-wide")
    _random.Random(seed + 2).shuffle(specs)
    return specs


def run_recall_experiment(
    attributes: int = 2,
    order: int = 10,
    num_subscriptions: int = 600,
    num_queries: int = 60,
    epsilons: Sequence[float] = (0.05, 0.25),
    seed: int = 5,
    cube_budget: int = 100_000,
) -> ResultTable:
    """E-RECALL: fraction of truly-covered queries detected, per strategy and ε.

    Two workload regimes are reported:

    * ``wide-covers`` — the stored set contains a share of broad subscriptions,
      so covers are typically much wider than the query (the regime the paper's
      optimisation targets); recall should stay near 1 for moderate ε.
    * ``narrow-covers`` — stored and query subscriptions have the same width
      distribution, so covering subscriptions are only barely wider and sit in
      the corner of the dominance region that the approximate search visits
      last; recall degrades, quantifying the cost of approximation.
    """
    table = ResultTable("E-RECALL: covering detection recall vs epsilon")
    regimes = {
        "wide-covers": dict(narrow_fraction=0.85, narrow_width=0.12, wide_width=0.55),
        "narrow-covers": dict(narrow_fraction=1.0, narrow_width=0.3, wide_width=0.3),
    }
    query_workload = SubscriptionWorkload(
        attributes=attributes, attribute_order=order, width_fraction=0.12, seed=seed + 7
    )
    queries = query_workload.generate(num_queries, prefix="query")

    for regime, params in regimes.items():
        stored = _mixed_width_workload(
            attributes, order, num_subscriptions, seed=seed, prefix="stored", **params
        )
        linear = LinearScanCoveringDetector(attributes, order)
        probabilistic = ProbabilisticCoveringDetector(attributes, order, samples=8, seed=seed)
        detector = ApproximateCoveringDetector(
            attributes=attributes, attribute_order=order, epsilon=0.05, cube_budget=cube_budget
        )
        for spec in stored:
            linear.add_subscription(spec.sub_id, spec.ranges)
            probabilistic.add_subscription(spec.sub_id, spec.ranges)
            detector.add_subscription(spec.sub_id, spec.ranges)

        truly_covered = [s for s in queries if linear.find_covering(s.ranges) is not None]
        uncovered = [s for s in queries if linear.find_covering(s.ranges) is None]
        if not truly_covered:
            table.add(regime=regime, note="no covered queries in this draw")
            continue

        for epsilon in epsilons:
            detected = sum(
                1
                for spec in truly_covered
                if detector.find_covering(spec.ranges, epsilon=epsilon).covered
            )
            table.add(
                regime=regime,
                strategy=f"sfc-approx(ε={epsilon})",
                covered_queries=len(truly_covered),
                detected=detected,
                recall=round(detected / len(truly_covered), 4),
                false_positives=0,
            )
        # Probabilistic baseline: never misses a true cover among evaluated
        # candidates, but may wrongly report covering — count false positives.
        detected = sum(
            1 for spec in truly_covered if probabilistic.find_covering(spec.ranges) is not None
        )
        false_pos = sum(
            1 for spec in uncovered if probabilistic.find_covering(spec.ranges) is not None
        )
        table.add(
            regime=regime,
            strategy="probabilistic(samples=8)",
            covered_queries=len(truly_covered),
            detected=detected,
            recall=round(detected / len(truly_covered), 4),
            false_positives=false_pos,
        )
        table.add(
            regime=regime,
            strategy="linear-scan(exact)",
            covered_queries=len(truly_covered),
            detected=len(truly_covered),
            recall=1.0,
            false_positives=0,
        )
    return table


# -------------------------------------------------------------------------- pub/sub
def _default_schema(order: int) -> AttributeSchema:
    return AttributeSchema(
        [Attribute("x", 0.0, 1000.0), Attribute("y", 0.0, 1000.0)], order=order
    )


def _spec_subscription(schema: AttributeSchema, spec: "SubscriptionSpec") -> Subscription:
    """Materialise one workload spec as a Subscription on ``schema``."""
    constraints = {
        name: (
            schema.dequantize_value(name, lo),
            schema.dequantize_value(name, hi),
        )
        for name, (lo, hi) in zip(schema.names, spec.ranges)
    }
    return Subscription(schema, constraints, sub_id=spec.sub_id)


def _spec_subscriptions(
    schema: AttributeSchema, specs: Sequence["SubscriptionSpec"]
) -> List[Subscription]:
    """Materialise workload specs as Subscription objects on ``schema``."""
    return [_spec_subscription(schema, spec) for spec in specs]


def run_pubsub_experiment(
    num_brokers: int = 7,
    num_subscriptions: int = 150,
    num_events: int = 40,
    order: int = 9,
    epsilon: float = 0.3,
    strategies: Sequence[str] = ("none", "exact", "approximate"),
    seed: int = 9,
    cube_budget: int = 4_000,
    matching: str = "linear",
    curve: str = "zorder",
) -> ResultTable:
    """E-PUBSUB: routing-table size and propagation traffic per covering strategy.

    The workload mixes narrow subscriptions with a share of broad ones (the
    regime covering is designed for); the per-check work of the approximate
    strategy is bounded by ``cube_budget`` like a real router would bound it.
    ``matching`` selects the event-matching implementation of every broker
    (``"linear"`` scan or the ``"sfc"`` match index) and ``curve`` the
    space-filling curve behind both the match index and the approximate
    strategy; the delivery audit runs identically under every combination.
    """
    import random as _random

    table = ResultTable("E-PUBSUB: subscription propagation in a broker tree")
    schema = _default_schema(order)
    specs = _mixed_width_workload(
        attributes=2,
        order=order,
        count=num_subscriptions,
        narrow_fraction=0.8,
        narrow_width=0.15,
        wide_width=0.55,
        seed=seed,
        prefix="sub",
    )
    events_workload = EventWorkload(attributes=2, attribute_order=order, seed=seed + 1)
    event_cells = events_workload.generate(num_events)

    rng = _random.Random(seed + 2)
    placements = [rng.randrange(num_brokers) for _ in specs]
    publish_at = [rng.randrange(num_brokers) for _ in event_cells]

    for strategy in strategies:
        network = BrokerNetwork.from_topology(
            schema,
            tree_topology(num_brokers),
            covering=strategy,
            epsilon=epsilon,
            seed=seed,
            cube_budget=cube_budget,
            matching=matching,
            curve=curve,
        )
        start = time.perf_counter()
        for spec, broker_id in zip(specs, placements):
            subscription = _spec_subscription(schema, spec)
            network.subscribe(broker_id, f"client-{spec.sub_id}", subscription)
        propagation_time = time.perf_counter() - start

        events = [
            (
                publish_at[i],
                Event(
                    schema,
                    {
                        name: schema.dequantize_value(name, cell)
                        for name, cell in zip(schema.names, cells)
                    },
                ),
            )
            for i, cells in enumerate(event_cells)
        ]
        stats = network.collect_stats(events)
        covering_work = sum(b.covering_check_runs for b in stats.per_broker.values())
        table.add(
            strategy=strategy if strategy != "approximate" else f"approximate(ε={epsilon})",
            matching=matching,
            curve=curve,
            routing_table_entries=stats.routing_table_entries,
            subscription_messages=stats.subscription_messages,
            suppressed=stats.total_suppressed,
            covering_work_units=covering_work,
            propagation_seconds=round(propagation_time, 4),
            events_missed=stats.events_missed,
        )
    return table


# ------------------------------------------------------------------ observability
@dataclass
class MetricsScenarioResult:
    """Everything the observability layer produces for one seeded scenario.

    ``table`` holds one row per published event (trace id, hop count,
    delivery audit); ``prometheus_text`` / ``snapshot`` are the registry's two
    exposition forms; ``trace_tree`` / ``critical_path`` render the first
    audited event's trace.  ``network`` is the live network for callers that
    want to drill further (tests compare its trace hop paths against the
    overlay routes the delivery audit expects).
    """

    table: ResultTable
    prometheus_text: str
    snapshot: Dict[str, object]
    trace_tree: str
    critical_path: str
    network: BrokerNetwork

    def to_text(self) -> str:
        """Table rendering, so the CLI treats this like any other experiment."""
        return self.table.to_text()


def run_metrics_scenario(
    num_brokers: int = 7,
    num_subscriptions: int = 60,
    num_events: int = 20,
    order: int = 8,
    epsilon: float = 0.3,
    matching: str = "sfc",
    curve: str = "zorder",
    seed: int = 17,
    trace_capacity: int = 4096,
) -> MetricsScenarioResult:
    """E-METRICS: a seeded tree scenario observed through the full obs layer.

    Builds a broker tree on a seeded :class:`~repro.sim.transport.SimTransport`
    with an enabled metrics registry and trace log, runs a mixed-width
    subscription workload plus a publish stream, and returns the Prometheus
    text, the JSON snapshot and per-event trace summaries.  Fully
    deterministic: two calls with the same arguments return byte-identical
    ``prometheus_text`` (pinned by tests).
    """
    import random as _random

    from ..sim.transport import SimTransport

    schema = _default_schema(order)
    specs = _mixed_width_workload(
        attributes=2,
        order=order,
        count=num_subscriptions,
        narrow_fraction=0.8,
        narrow_width=0.15,
        wide_width=0.55,
        seed=seed,
        prefix="sub",
    )
    event_cells = EventWorkload(
        attributes=2, attribute_order=order, seed=seed + 1
    ).generate(num_events)
    network = BrokerNetwork.from_topology(
        schema,
        tree_topology(num_brokers),
        covering="approximate",
        epsilon=epsilon,
        seed=seed,
        matching=matching,
        curve=curve,
        transport=SimTransport(seed=seed),
        metrics=MetricsRegistry(),
        tracing=TraceLog(capacity=trace_capacity, seed=seed),
    )
    rng = _random.Random(seed + 2)
    placements = [rng.randrange(num_brokers) for _ in specs]
    publish_at = [rng.randrange(num_brokers) for _ in event_cells]
    for spec, broker_id in zip(specs, placements):
        network.subscribe(broker_id, f"client-{spec.sub_id}", _spec_subscription(schema, spec))
    network.flush()

    table = ResultTable("E-METRICS: traced event routing on a broker tree")
    for i, cells in enumerate(event_cells):
        event = Event(
            schema,
            {
                name: schema.dequantize_value(name, cell)
                for name, cell in zip(schema.names, cells)
            },
            event_id=f"event-{i}",
        )
        origin = publish_at[i]
        missed, extra = network.publish_and_audit(origin, event)
        expected = network.expected_recipients(event, origin=origin)
        trace_id = network.tracing.trace_id_for("evt", event.event_id)
        table.add(
            event_id=event.event_id,
            origin=origin,
            trace_id=trace_id,
            hops=len(network.tracing.hop_spans(trace_id)),
            delivered=len(expected) - len(missed) + len(extra),
            missed=len(missed),
        )

    prometheus_text = network.scrape()
    first_trace = network.tracing.trace_id_for("evt", "event-0")
    first_spans = network.tracing.spans(trace_id=first_trace)
    return MetricsScenarioResult(
        table=table,
        prometheus_text=prometheus_text,
        snapshot=metrics_snapshot(network.metrics),
        trace_tree=format_trace_tree(first_spans, title="trace event-0"),
        critical_path=format_critical_path(first_spans, title="event-0"),
        network=network,
    )


# --------------------------------------------------------------------- event matching
def run_subscription_churn_experiment(
    sizes: Sequence[int] = (10_000, 50_000),
    num_brokers: int = 15,
    order: int = 8,
    epsilon: float = 0.3,
    cube_budget: int = 200,
    wide_fraction: float = 0.04,
    max_cover_withdrawals: int = 40,
    narrow_withdrawals: int = 200,
    audit_size: Optional[int] = None,
    audit_events: int = 25,
    topologies: Sequence[str] = ("tree", "chain", "star"),
    transports: Sequence[str] = ("sync", "sim"),
    curve: str = "zorder",
    seed: int = 11,
    verify_state: bool = False,
) -> ResultTable:
    """E-SUB-CHURN: batched subscription churn vs the per-subscription baseline.

    Two row kinds:

    * ``phase="churn"`` — for each size, the same wide/narrow workload is
      subscribed and then partially withdrawn (a slice of broad covers plus a
      slice of narrow subscriptions, so the withdrawal-promotion path runs
      hard; ``max_cover_withdrawals`` bounds the *baseline's* rescan blow-up,
      which is quadratic in practice — 300 cover withdrawals at 50k
      subscriptions put the legacy engine beyond an hour) on
      a broker tree, once through the legacy per-subscription path
      (``promotion="rescan"``, ``profile_sharing=False`` — the pre-fast-path
      broker, which re-derives each covering query's geometry per link and
      re-checks the whole suppressed set per withdrawal) and once through
      ``subscribe_batch`` / ``unsubscribe_batch`` with profile sharing and
      incremental promotion.  The row reports both phase timings and the
      combined speedup.
    * ``phase="audit"`` — the fast path's post-churn delivery audit on every
      (topology × transport) pair: after the batch churn settles, probe
      events published across the overlay must reach exactly the surviving
      matching subscribers (``missed`` must be 0 everywhere; the fast path
      may only ever *suppress more*, never lose).

    With ``verify_state=True`` (the CI smoke pass) every churn comparison
    additionally replays the batch workload through sequential
    ``subscribe`` / ``unsubscribe`` calls under identical flags and asserts
    the two runs leave byte-identical normalised routing state — the batch
    API is pinned to be a pure amortisation.
    """
    import random as _random

    from ..sim.latency import make_latency_model
    from ..sim.transport import SimTransport

    topology_builders = {
        "tree": tree_topology,
        "chain": chain_topology,
        "star": star_topology,
    }
    table = ResultTable("E-SUB-CHURN: subscription churn, batch fast path vs baseline")
    schema = _default_schema(order)

    def build_workload(size: int):
        specs = _mixed_width_workload(
            attributes=2,
            order=order,
            count=size,
            narrow_fraction=1.0 - wide_fraction,
            narrow_width=0.04,
            wide_width=0.4,
            seed=seed,
            prefix=f"churn-{size}",
        )
        subscriptions = _spec_subscriptions(schema, specs)
        rng = _random.Random(seed + 1)
        placement = {
            sub.sub_id: rng.randrange(num_brokers) for sub in subscriptions
        }
        # Per-broker batches in arrival order; the sequential baseline replays
        # the same flattened order so covering decisions see identical
        # arrival sequences.
        batches: Dict[int, List[Tuple[str, Subscription]]] = {}
        for sub in subscriptions:
            batches.setdefault(placement[sub.sub_id], []).append(
                (f"client-{sub.sub_id}", sub)
            )
        wides = [s for s in subscriptions if "-wide-" in str(s.sub_id)]
        narrows = [s for s in subscriptions if "-narrow-" in str(s.sub_id)]
        withdrawals = wides[:max_cover_withdrawals] + narrows[:narrow_withdrawals]
        # Group withdrawals by home broker (batch processing order) so the
        # sequential replay withdraws in the same per-link order.
        kill_groups: Dict[int, List[Tuple[str, str]]] = {}
        for sub in withdrawals:
            kill_groups.setdefault(placement[sub.sub_id], []).append(
                (f"client-{sub.sub_id}", sub.sub_id)
            )
        kills = [pair for group in kill_groups.values() for pair in group]
        return batches, kills

    def make_network(topology: str, transport: str, promotion: str, sharing: bool):
        if transport == "sim":
            transport_obj = SimTransport(
                make_latency_model("fixed", delay=0.01), seed=seed
            )
        else:
            transport_obj = None
        return BrokerNetwork.from_topology(
            schema,
            topology_builders[topology](num_brokers),
            covering="approximate",
            epsilon=epsilon,
            cube_budget=cube_budget,
            curve=curve,
            promotion=promotion,
            profile_sharing=sharing,
            transport=transport_obj,
        )

    def run_batch(network: BrokerNetwork, batches, kills):
        start = time.perf_counter()
        for broker_id, items in batches.items():
            network.subscribe_batch(broker_id, items)
        subscribe_seconds = time.perf_counter() - start
        start = time.perf_counter()
        network.unsubscribe_batch(kills)
        withdraw_seconds = time.perf_counter() - start
        return subscribe_seconds, withdraw_seconds

    def run_sequential(network: BrokerNetwork, batches, kills):
        start = time.perf_counter()
        for broker_id, items in batches.items():
            for client_id, subscription in items:
                network.subscribe(broker_id, client_id, subscription)
        network.flush()
        subscribe_seconds = time.perf_counter() - start
        start = time.perf_counter()
        for client_id, sub_id in kills:
            network.unsubscribe(client_id, sub_id)
        network.flush()
        withdraw_seconds = time.perf_counter() - start
        return subscribe_seconds, withdraw_seconds

    # ------------------------------------------------------- churn comparison
    for size in sizes:
        batches, kills = build_workload(size)
        legacy = make_network("tree", "sync", promotion="rescan", sharing=False)
        legacy_subscribe, legacy_withdraw = run_sequential(legacy, batches, kills)
        fast = make_network("tree", "sync", promotion="incremental", sharing=True)
        fast_subscribe, fast_withdraw = run_batch(fast, batches, kills)
        if verify_state:
            replay = make_network("tree", "sync", promotion="incremental", sharing=True)
            run_sequential(replay, batches, kills)
            if replay.routing_state() != fast.routing_state():
                raise AssertionError(
                    "batch subscribe/withdraw diverged from sequential replay "
                    f"at size {size}"
                )
        stats = fast.collect_stats()
        legacy_total = legacy_subscribe + legacy_withdraw
        fast_total = fast_subscribe + fast_withdraw
        table.add(
            phase="churn",
            subscriptions=size,
            topology="tree",
            transport="sync",
            withdrawals=len(kills),
            legacy_subscribe_s=round(legacy_subscribe, 3),
            legacy_withdraw_s=round(legacy_withdraw, 3),
            fast_subscribe_s=round(fast_subscribe, 3),
            fast_withdraw_s=round(fast_withdraw, 3),
            speedup=round(legacy_total / fast_total, 2) if fast_total else 0.0,
            withdraw_speedup=(
                round(legacy_withdraw / fast_withdraw, 2) if fast_withdraw else 0.0
            ),
            promotions=stats.total_promotions,
            batch_covering_checks=stats.total_batch_covering_checks,
            profile_cache_hits=stats.profile_cache_hits,
            profile_cache_misses=stats.profile_cache_misses,
        )

    # ------------------------------------------------------------ audit matrix
    matrix_size = audit_size if audit_size is not None else min(sizes)
    batches, kills = build_workload(matrix_size)
    event_workload = EventWorkload(attributes=2, attribute_order=order, seed=seed + 3)
    events = [
        Event(
            schema,
            {
                name: schema.dequantize_value(name, cell)
                for name, cell in zip(schema.names, cells)
            },
            event_id=f"audit-{i}",
        )
        for i, cells in enumerate(event_workload.generate(audit_events))
    ]
    rng = _random.Random(seed + 4)
    for topology in topologies:
        for transport in transports:
            network = make_network(topology, transport, "incremental", True)
            run_batch(network, batches, kills)
            missed_total = extra_total = 0
            for event in events:
                missed, extra = network.publish_and_audit(
                    rng.randrange(num_brokers), event
                )
                missed_total += len(missed)
                extra_total += len(extra)
            table.add(
                phase="audit",
                subscriptions=matrix_size,
                topology=topology,
                transport=transport,
                withdrawals=len(kills),
                missed=missed_total,
                extra=extra_total,
                promotions=network.collect_stats().total_promotions,
            )
    return table


def run_event_matching_experiment(
    table_sizes: Sequence[int] = (100, 1_000),
    num_events: int = 400,
    order: int = 8,
    seed: int = 17,
    backend: str = "avl",
    run_budget: int = 64,
    curve: str = "zorder",
) -> ResultTable:
    """E-MATCH: per-interface event matching, linear scan vs the SFC match index.

    Builds one interface table per matching mode with the same stored
    subscriptions (mostly narrow, a few broad — the per-interface shape a
    loaded broker sees), verifies the two modes agree on every event, then
    times ``any_match`` over the event stream.  The crossover the tentpole
    targets: at ≥ 1,000 stored subscriptions the single ordered-map probe of
    the index beats scanning the table, and the gap widens with table size.
    """
    from ..pubsub.routing_table import InterfaceTable

    table = ResultTable("E-MATCH: event matching, linear scan vs SFC match index")
    schema = _default_schema(order)
    events_workload = EventWorkload(attributes=2, attribute_order=order, seed=seed + 1)
    events = [
        Event(
            schema,
            {
                name: schema.dequantize_value(name, cell)
                for name, cell in zip(schema.names, cells)
            },
        )
        for cells in events_workload.generate(num_events)
    ]

    for size in table_sizes:
        specs = _mixed_width_workload(
            attributes=2,
            order=order,
            count=size,
            narrow_fraction=0.95,
            narrow_width=0.05,
            wide_width=0.3,
            seed=seed,
            prefix=f"match-{size}",
        )
        linear = InterfaceTable("bench", schema=schema, matching="linear")
        sfc = InterfaceTable(
            "bench",
            schema=schema,
            matching="sfc",
            backend=backend,
            run_budget=run_budget,
            curve=curve,
        )
        subscriptions = _spec_subscriptions(schema, specs)
        for subscription in subscriptions:
            linear.add(subscription)
        build_start = time.perf_counter()
        for subscription in subscriptions:
            sfc.add(subscription)
        build_seconds = time.perf_counter() - build_start

        disagreements = sum(
            1 for event in events if linear.any_match(event) != sfc.any_match(event)
        )
        if disagreements:
            raise AssertionError(
                f"SFC match index disagrees with linear scan on {disagreements} events"
            )

        start = time.perf_counter()
        for event in events:
            linear.any_match(event)
        linear_seconds = time.perf_counter() - start
        index = sfc.match_index
        assert index is not None
        index.stats.candidates_checked = 0
        index.stats.false_positives = 0
        start = time.perf_counter()
        for event in events:
            sfc.any_match(event)
        sfc_seconds = time.perf_counter() - start

        table.add(
            subscriptions=size,
            events=num_events,
            curve=curve,
            linear_seconds=round(linear_seconds, 5),
            sfc_seconds=round(sfc_seconds, 5),
            speedup=round(linear_seconds / sfc_seconds, 2) if sfc_seconds else float("inf"),
            sfc_build_seconds=round(build_seconds, 4),
            segments=index.segment_count(),
            candidates_checked=index.stats.candidates_checked,
            false_positives=index.stats.false_positives,
        )
    return table


# ---------------------------------------------------------------- curve ablation
def run_curve_ablation_experiment(
    curves: Sequence[str] = ("zorder", "hilbert", "gray"),
    scenario_names: Sequence[str] = ("stock", "sensor", "auction"),
    num_brokers: int = 7,
    num_subscriptions: int = 240,
    num_events: int = 120,
    order: int = 9,
    epsilon: float = 0.2,
    cube_budget: int = 2_000,
    withdraw_fraction: float = 0.5,
    audit_events: int = 12,
    fig1_rectangles: int = 200,
    fig1_order: int = 6,
    seed: int = 31,
) -> ResultTable:
    """E-CURVE: the routing stack under Z-order vs Hilbert vs Gray, end to end.

    Two row kinds:

    * ``phase="routing"`` — for each application scenario × curve, a broker
      tree runs the full lifecycle with SFC matching and approximate covering
      keyed by that curve: batch subscribe (covering path), batch publish
      (matching path), batch withdrawal (churn/promotion path), then a
      delivery audit.  Rows report per-phase throughput plus the structure
      stats where the curve choice shows up — total match-index segments,
      match false positives, covering runs probed.  The driver *asserts* the
      cross-curve differential inline: per-event delivery sets must be
      identical under every curve (curves may change stats, never semantics),
      and no audited event may miss a subscriber.
    * ``phase="runs"`` — the Fig. 1 claim at workload scale: exact run counts
      of a seeded family of 2-D rectangles under each curve (the per-curve
      analogue of ``run_fig1_experiment``'s three hand-picked instances).
      Hilbert is expected to need fewer runs than Z in aggregate.
    """
    import random as _random

    from ..core.decomposition import decompose_rectangle
    from ..sfc.factory import make_curve
    from ..sfc.runs import merge_key_ranges
    from ..workloads.scenarios import (
        auction_scenario,
        sensor_network_scenario,
        stock_market_scenario,
    )

    scenario_factories = {
        "stock": stock_market_scenario,
        "sensor": sensor_network_scenario,
        "auction": auction_scenario,
    }
    table = ResultTable("E-CURVE: matching/covering/churn throughput per space filling curve")

    for scenario_name in scenario_names:
        scenario = scenario_factories[scenario_name](
            num_subscriptions=num_subscriptions,
            num_events=num_events,
            order=order,
            seed=seed,
        )
        schema = scenario.schema
        subscriptions = [
            Subscription(schema, constraints, sub_id=f"{scenario_name}-sub-{i}")
            for i, constraints in enumerate(scenario.subscriptions)
        ]
        events = [
            Event(schema, values, event_id=f"{scenario_name}-event-{i}")
            for i, values in enumerate(scenario.events)
        ]
        rng = _random.Random(seed + 1)
        batches: Dict[int, List[Tuple[str, Subscription]]] = {}
        for sub in subscriptions:
            batches.setdefault(rng.randrange(num_brokers), []).append(
                (f"client-{sub.sub_id}", sub)
            )
        publish_groups: Dict[int, List[Event]] = {}
        for event in events:
            publish_groups.setdefault(rng.randrange(num_brokers), []).append(event)
        withdrawals = [
            (f"client-{sub.sub_id}", sub.sub_id)
            for sub in subscriptions[: int(len(subscriptions) * withdraw_fraction)]
        ]
        audit_origins = [rng.randrange(num_brokers) for _ in range(audit_events)]

        delivered_by_curve: Dict[str, Dict[Hashable, frozenset]] = {}
        for curve in curves:
            network = BrokerNetwork.from_topology(
                schema,
                tree_topology(num_brokers),
                covering="approximate",
                epsilon=epsilon,
                cube_budget=cube_budget,
                matching="sfc",
                curve=curve,
            )
            start = time.perf_counter()
            for broker_id, items in batches.items():
                network.subscribe_batch(broker_id, items)
            subscribe_seconds = time.perf_counter() - start

            delivered: Dict[Hashable, frozenset] = {}
            start = time.perf_counter()
            for broker_id, group in publish_groups.items():
                for event, clients in zip(group, network.publish_batch(broker_id, group)):
                    delivered[event.event_id] = frozenset(clients)
            publish_seconds = time.perf_counter() - start
            delivered_by_curve[curve] = delivered

            start = time.perf_counter()
            network.unsubscribe_batch(withdrawals)
            withdraw_seconds = time.perf_counter() - start

            missed_total = extra_total = 0
            for event, origin in zip(events[:audit_events], audit_origins):
                missed, extra = network.publish_and_audit(origin, event)
                missed_total += len(missed)
                extra_total += len(extra)
            if missed_total:
                raise AssertionError(
                    f"curve {curve!r} lost {missed_total} deliveries on "
                    f"{scenario_name} — curves must never change semantics"
                )

            stats = network.collect_stats()
            covering_runs = sum(b.covering_check_runs for b in stats.per_broker.values())
            false_positives = sum(
                b.match_index_false_positives for b in stats.per_broker.values()
            )
            segments = sum(
                broker.routing_table.match_segments()
                for broker in network.brokers.values()
            )
            table.add(
                phase="routing",
                scenario=scenario_name,
                curve=curve,
                subscribe_s=round(subscribe_seconds, 4),
                publish_s=round(publish_seconds, 4),
                withdraw_s=round(withdraw_seconds, 4),
                events_per_s=round(num_events / publish_seconds, 1)
                if publish_seconds
                else float("inf"),
                subs_per_s=round(len(subscriptions) / subscribe_seconds, 1)
                if subscribe_seconds
                else float("inf"),
                withdrawals_per_s=round(len(withdrawals) / withdraw_seconds, 1)
                if withdraw_seconds
                else float("inf"),
                segments=segments,
                match_false_positives=false_positives,
                covering_runs_probed=covering_runs,
                missed=missed_total,
                extra=extra_total,
            )
        baseline = delivered_by_curve[curves[0]]
        for curve in curves[1:]:
            if delivered_by_curve[curve] != baseline:
                differing = [
                    event_id
                    for event_id in baseline
                    if delivered_by_curve[curve].get(event_id) != baseline[event_id]
                ]
                raise AssertionError(
                    f"delivery sets differ between {curves[0]!r} and {curve!r} on "
                    f"{scenario_name} for events {differing[:5]} — curves must "
                    "never change semantics"
                )

    # Fig. 1 at workload scale: exact run counts for a seeded rectangle family.
    universe = Universe(dims=2, order=fig1_order)
    rect_workload = SubscriptionWorkload(
        attributes=2, attribute_order=fig1_order, width_fraction=0.4, seed=seed + 2
    )
    rectangles = [
        Rectangle(tuple(lo for lo, _ in spec.ranges), tuple(hi for _, hi in spec.ranges))
        for spec in rect_workload.generate(fig1_rectangles, prefix="fig1")
    ]
    cube_partitions = [decompose_rectangle(universe, rect) for rect in rectangles]
    for curve_kind in curves:
        curve = make_curve(curve_kind, universe)
        run_counts = [
            len(merge_key_ranges(curve.cube_key_range(cube) for cube in cubes))
            for cubes in cube_partitions
        ]
        table.add(
            phase="runs",
            scenario="fig1-style",
            curve=curve_kind,
            rectangles=len(rectangles),
            total_runs=sum(run_counts),
            mean_runs=round(sum(run_counts) / len(run_counts), 2),
            max_runs=max(run_counts),
        )
    return table


# -------------------------------------------------------------- dimensionality sweep
def run_dimensionality_experiment(
    attribute_counts: Sequence[int] = (1, 2, 3),
    order: int = 8,
    epsilon: float = 0.2,
    alphas: Sequence[int] = (0, 2, 4),
    num_subscriptions: int = 400,
    num_queries: int = 25,
    seed: int = 17,
) -> ResultTable:
    """E-DIM: query cost as dimensionality and aspect ratio grow."""
    table = ResultTable("E-DIM: runs probed vs attributes and aspect ratio")
    for attributes in attribute_counts:
        for alpha in alphas:
            workload = SubscriptionWorkload(
                attributes=attributes,
                attribute_order=order,
                width_fraction=0.25,
                aspect_skew=alpha,
                seed=seed,
            )
            stored = workload.generate(num_subscriptions, prefix="stored")
            queries = workload.generate(num_queries, prefix="query")
            detector = ApproximateCoveringDetector(
                attributes=attributes,
                attribute_order=order,
                epsilon=epsilon,
                cube_budget=25_000,
            )
            for spec in stored:
                detector.add_subscription(spec.sub_id, spec.ranges)
            runs_total = 0
            mean_alpha = 0.0
            for spec in queries:
                result = detector.find_covering(spec.ranges)
                runs_total += result.query.runs_probed
                mean_alpha += result.query.aspect_ratio
            table.add(
                attributes=attributes,
                dominance_dims=2 * attributes,
                requested_aspect_skew=alpha,
                mean_query_aspect_ratio=round(mean_alpha / num_queries, 2),
                mean_runs_probed=round(runs_total / num_queries, 2),
                theorem31_bound=theorem31_run_bound(2 * attributes, alpha, epsilon),
            )
    return table


# ------------------------------------------------------------------------ throughput
def run_throughput_experiment(
    attributes: int = 2,
    order: int = 10,
    sizes: Sequence[int] = (500, 1_000, 2_000),
    num_queries: int = 60,
    epsilon: float = 0.1,
    seed: int = 23,
    backend: str = "flat",
) -> ResultTable:
    """E-THROUGHPUT: queries/second vs table size for each covering index.

    ``backend`` selects the SFC-array ordered-map store behind the
    approximate detector (``"flat"``, ``"avl"``, ``"skiplist"``,
    ``"sortedlist"``) so backend choice can be ablated on the same workload;
    answers are backend-independent, only the timings move.
    """
    table = ResultTable(
        "E-THROUGHPUT: covering-check throughput vs stored subscriptions "
        f"(sfc backend: {backend})"
    )
    dims = 2 * attributes
    query_workload = SubscriptionWorkload(
        attributes=attributes, attribute_order=order, width_fraction=0.1, seed=seed + 5
    )
    queries = query_workload.generate(num_queries, prefix="query")
    for size in sizes:
        # Stored subscriptions mix narrow and broad ranges: the broad ones are
        # what make covering common and what the SFC search finds first.
        stored = _mixed_width_workload(
            attributes=attributes,
            order=order,
            count=size,
            narrow_fraction=0.85,
            narrow_width=0.15,
            wide_width=0.55,
            seed=seed,
            prefix="stored",
        )

        approx = ApproximateCoveringDetector(
            attributes=attributes,
            attribute_order=order,
            epsilon=epsilon,
            cube_budget=20_000,
            backend=backend,
        )
        linear = LinearScanCoveringDetector(attributes, order)
        kdtree = KDTree(dims=dims)
        transform = approx.transform
        entries = []
        for spec in stored:
            approx.add_subscription(spec.sub_id, spec.ranges)
            linear.add_subscription(spec.sub_id, spec.ranges)
            point = transform.to_point(spec.ranges)
            kdtree.insert(spec.sub_id, point)
            entries.append((spec.sub_id, point))
        range_tree = RangeTree.build(dims, entries)

        def timed(fn) -> Tuple[float, int]:
            start = time.perf_counter()
            hits = 0
            for spec in queries:
                if fn(spec):
                    hits += 1
            return time.perf_counter() - start, hits

        t_approx, hits_approx = timed(lambda s: approx.find_covering(s.ranges).covered)
        t_linear, hits_linear = timed(lambda s: linear.find_covering(s.ranges) is not None)
        t_kd, hits_kd = timed(
            lambda s: kdtree.find_dominating(transform.to_point(s.ranges)) is not None
        )
        t_rt, hits_rt = timed(
            lambda s: range_tree.find_dominating(transform.to_point(s.ranges)) is not None
        )

        table.add(
            stored=size,
            approx_qps=round(num_queries / t_approx, 1),
            linear_qps=round(num_queries / t_linear, 1),
            kdtree_qps=round(num_queries / t_kd, 1),
            rangetree_qps=round(num_queries / t_rt, 1),
            approx_hits=hits_approx,
            exact_hits=hits_linear,
            rangetree_storage_cells=range_tree.storage_cells(),
        )
    return table


def run_sim_latency_experiment(
    num_brokers: int = 9,
    num_subscriptions: int = 60,
    num_events: int = 40,
    order: int = 8,
    latency_models: Sequence[str] = ("fixed", "uniform", "distance"),
    topologies: Sequence[str] = ("tree", "chain", "star"),
    inbox_capacity: int = 8,
    service_time: float = 0.02,
    epsilon: float = 0.2,
    matching: str = "linear",
    curve: str = "zorder",
    seed: int = 29,
) -> ResultTable:
    """E-SIM-LATENCY: flash-crowd delivery latency under simulated transports.

    For every (latency model × topology) pair, a sensor-network flash-crowd
    script runs over a :class:`~repro.sim.transport.SimTransport` with bounded
    per-broker inboxes, and the row reports the delivery-latency percentiles,
    hop counts, queue-depth high-water mark, backpressure retries — and the
    audit outcome, which must be zero missed deliveries for every
    configuration (the safety claim does not bend to timing).
    """
    from ..sim.latency import make_latency_model, random_positions
    from ..sim.transport import SimTransport
    from ..workloads.dynamics import flash_crowd_script, run_dynamic_scenario
    from ..workloads.scenarios import sensor_network_scenario

    topology_builders = {
        "tree": tree_topology,
        "chain": chain_topology,
        "star": star_topology,
    }
    table = ResultTable("E-SIM-LATENCY: flash-crowd latency by latency model and topology")
    scenario = sensor_network_scenario(
        num_subscriptions=num_subscriptions, num_events=num_events, order=order, seed=seed
    )
    broker_ids = list(range(num_brokers))
    for model_kind in latency_models:
        for topo_kind in topologies:
            if model_kind == "fixed":
                latency = make_latency_model("fixed", delay=0.5)
            elif model_kind == "uniform":
                latency = make_latency_model("uniform", base=0.2, jitter=0.6)
            else:
                latency = make_latency_model(
                    "distance", positions=random_positions(broker_ids, seed=seed), scale=0.1
                )
            transport = SimTransport(
                latency,
                inbox_capacity=inbox_capacity,
                service_time=service_time,
                seed=seed,
            )
            network = BrokerNetwork.from_topology(
                scenario.schema,
                topology_builders[topo_kind](num_brokers),
                covering="approximate",
                epsilon=epsilon,
                matching=matching,
                curve=curve,
                transport=transport,
            )
            report = run_dynamic_scenario(
                network,
                flash_crowd_script(scenario, broker_ids, seed=seed + 1),
                name=f"{model_kind}/{topo_kind}",
            )
            summary = report.stats.transport_summary()
            table.add(
                latency_model=model_kind,
                topology=topo_kind,
                events=report.events_published,
                missed=report.missed_deliveries,
                latency_p50=round(summary["latency_p50"], 3),
                latency_p90=round(summary["latency_p90"], 3),
                latency_p99=round(summary["latency_p99"], 3),
                hops_p90=summary["hops_p90"],
                max_queue_depth=summary["max_queue_depth"],
                backpressure_retries=summary["backpressure_retries"],
                messages_sent=summary["messages_sent"],
            )
    return table


# --------------------------------------------------------------- topology scale
def run_topology_scale_experiment(
    num_brokers: int = 600,
    num_subscriptions: int = 60,
    num_events: int = 40,
    order: int = 8,
    topology_classes: Sequence[str] = ("skewed-tree", "scale-free", "grid-cluster"),
    lan: float = 0.02,
    wan: float = 0.25,
    inbox_capacity: int = 64,
    service_time: float = 0.002,
    epsilon: float = 0.2,
    matching: str = "linear",
    curve: str = "zorder",
    seed: int = 29,
) -> ResultTable:
    """E-TOPO-SCALE: latency/hop distributions per internet-scale topology class.

    For every generated topology class (skewed random tree, Barabási–Albert
    scale-free, grid-of-clusters WAN), the class's region metadata prices
    links LAN-vs-WAN (:class:`~repro.sim.latency.RegionLatency`), a sensor
    flash-crowd script runs over the spanning-tree overlay, and the row
    reports per-class delivery-latency and overlay-hop percentiles plus the
    audit outcome — which must be zero missed deliveries at every scale (the
    safety claim is size-independent).
    """
    from ..sim.transport import SimTransport
    from ..workloads.dynamics import flash_crowd_script, run_dynamic_scenario
    from ..workloads.scenarios import sensor_network_scenario
    from ..workloads.topologies import make_topology

    table = ResultTable(
        "E-TOPO-SCALE: latency/hop distributions per generated topology class"
    )
    scenario = sensor_network_scenario(
        num_subscriptions=num_subscriptions, num_events=num_events, order=order, seed=seed
    )
    for kind in topology_classes:
        topology = make_topology(kind, num_brokers, seed=seed)
        transport = SimTransport(
            topology.latency_model(lan=lan, wan=wan),
            inbox_capacity=inbox_capacity,
            service_time=service_time,
            seed=seed,
        )
        network = BrokerNetwork.from_topology(
            scenario.schema,
            topology.overlay,
            covering="approximate",
            epsilon=epsilon,
            matching=matching,
            curve=curve,
            transport=transport,
            nodes=topology.broker_ids,
        )
        # The flash-crowd settle must cover the overlay's worst-case
        # propagation (diameter x WAN delay), which grows with scale.
        settle = max(5.0, 4 * wan * num_brokers ** 0.5)
        report = run_dynamic_scenario(
            network,
            flash_crowd_script(
                scenario, topology.broker_ids, settle=settle, seed=seed + 1
            ),
            name=f"topo-scale/{kind}",
        )
        summary = report.stats.transport_summary()
        table.add(
            topology=kind,
            brokers=topology.num_brokers,
            regions=len(topology.region_ids()),
            underlay_edges=len(topology.underlay),
            events=report.events_published,
            missed=report.missed_deliveries,
            latency_p50=round(summary["latency_p50"], 3),
            latency_p90=round(summary["latency_p90"], 3),
            latency_p99=round(summary["latency_p99"], 3),
            hops_p50=summary["hops_p50"],
            hops_p90=summary["hops_p90"],
            hops_max=summary["hops_max"],
            max_queue_depth=summary["max_queue_depth"],
            backpressure_retries=summary["backpressure_retries"],
            messages_sent=summary["messages_sent"],
        )
    return table


# ------------------------------------------------------------- match index scale
def _scale_subscriptions(
    count: int, order: int, seed: int, max_width: int = 24
) -> List[Tuple[str, Tuple[Tuple[int, int], ...]]]:
    """Deterministic ``(sub_id, ranges)`` pairs for the scale phases.

    Plain tuples rather than Subscription objects: at a million entries the
    object overhead would dominate the build being measured.
    """
    import random

    rng = random.Random(seed)
    side = 1 << order
    items: List[Tuple[str, Tuple[Tuple[int, int], ...]]] = []
    for i in range(count):
        ranges = []
        for _ in range(2):
            lo = rng.randrange(side)
            ranges.append((lo, min(side - 1, lo + rng.randrange(max_width))))
        items.append((f"s{i}", tuple(ranges)))
    return items


def run_match_scale_experiment(
    populations: Sequence[int] = (100_000, 1_000_000),
    baseline_population: int = 20_000,
    num_events: int = 20_000,
    num_delivery_events: int = 200,
    order: int = 10,
    precision_bits: int = 4,
    shards: int = 4,
    parity_subscriptions: int = 400,
    parity_events: int = 300,
    seed: int = 31,
    min_speedup: float = 0.0,
) -> ResultTable:
    """E-MATCH-SCALE: million-subscription matching on the flattened backends.

    Three phases, one row each:

    * **parity** — every backend (including ``"sharded"``) under every curve
      must produce delivery sets identical to a brute-force rectangle scan;
      any disagreement raises instead of producing a row.
    * **baseline** — per-subscription insert throughput of the ordered-map
      default of the previous generation (``"avl"``), measured at a size it
      can sustain.
    * **scale** — for each population: bulk ``add_batch`` build throughput and
      publish throughput (``any_match_batch`` over ``num_events`` events plus
      ``matching_ids_batch`` over ``num_delivery_events``) for the ``"flat"``
      and ``"sharded"`` backends, with segment counts, flattened member
      entries and peak RSS.  ``min_speedup`` (when > 0) asserts the flat bulk
      build rate is at least that multiple of the baseline insert rate.
    """
    import random
    import resource

    from ..pubsub.match_index import MatchIndex
    from ..pubsub.sharded_index import ShardedMatchIndex
    from ..sfc.factory import CURVE_KINDS

    table = ResultTable("E-MATCH-SCALE: million-subscription matching, flat + sharded backends")
    schema = _default_schema(order)
    side = 1 << order

    # ---------------------------------------------------------------- parity
    parity_items = _scale_subscriptions(parity_subscriptions, order, seed + 1)
    rng = random.Random(seed + 2)
    parity_cells = [
        (rng.randrange(side), rng.randrange(side)) for _ in range(parity_events)
    ]
    oracle = [
        sorted(
            sid
            for sid, rect in parity_items
            if all(lo <= c <= hi for (lo, hi), c in zip(rect, cells))
        )
        for cells in parity_cells
    ]
    backends = ("flat", "avl", "skiplist", "sortedlist", "sharded")
    combos = 0
    for curve in CURVE_KINDS:
        for backend in backends:
            if backend == "sharded":
                index = ShardedMatchIndex(
                    schema, shards=shards, curve=curve, precision_bits=precision_bits
                )
            else:
                index = MatchIndex(
                    schema, backend=backend, curve=curve, precision_bits=precision_bits
                )
            index.add_batch(parity_items)
            got = [sorted(ids) for ids in index.matching_ids_batch(parity_cells)]
            if got != oracle:
                bad = next(i for i in range(len(oracle)) if got[i] != oracle[i])
                raise AssertionError(
                    f"backend {backend!r} under curve {curve!r} disagrees with the "
                    f"rectangle oracle on event {parity_cells[bad]}"
                )
            combos += 1
    table.add(
        phase="parity",
        backend="all",
        curve="all",
        subscriptions=parity_subscriptions,
        events=parity_events,
        combos_verified=combos,
    )

    # -------------------------------------------------------------- baseline
    baseline_items = _scale_subscriptions(baseline_population, order, seed)
    baseline = MatchIndex(schema, backend="avl", precision_bits=precision_bits)
    start = time.perf_counter()
    for sub_id, ranges in baseline_items:
        baseline.add(sub_id, ranges)
    baseline_seconds = time.perf_counter() - start
    baseline_rate = baseline_population / baseline_seconds
    table.add(
        phase="baseline",
        backend="avl",
        curve="zorder",
        subscriptions=baseline_population,
        build_seconds=round(baseline_seconds, 3),
        inserts_per_second=round(baseline_rate, 1),
        segments=baseline.segment_count(),
    )

    # ----------------------------------------------------------------- scale
    for population in populations:
        items = _scale_subscriptions(population, order, seed)
        event_rng = random.Random(seed + 3)
        events = [
            (event_rng.randrange(side), event_rng.randrange(side))
            for _ in range(num_events)
        ]
        for backend in ("flat", "sharded"):
            if backend == "flat":
                index = MatchIndex(schema, backend="flat", precision_bits=precision_bits)
            else:
                index = ShardedMatchIndex(
                    schema, shards=shards, precision_bits=precision_bits
                )
            start = time.perf_counter()
            index.add_batch(items)
            build_seconds = time.perf_counter() - start
            build_rate = population / build_seconds

            start = time.perf_counter()
            any_results = index.any_match_batch(events)
            any_seconds = time.perf_counter() - start

            start = time.perf_counter()
            deliveries = index.matching_ids_batch(events[:num_delivery_events])
            delivery_seconds = time.perf_counter() - start

            if backend == "flat":
                member_entries = index._flat.member_entries
                rebuilds = index._flat.rebuilds
                if min_speedup and build_rate < min_speedup * baseline_rate:
                    raise AssertionError(
                        f"flat bulk build at {population} subscriptions reached only "
                        f"{build_rate:.0f}/s vs baseline {baseline_rate:.0f}/s "
                        f"({build_rate / baseline_rate:.1f}x < {min_speedup}x)"
                    )
            else:
                member_entries = sum(
                    shard._flat.member_entries for shard in index._indexes
                )
                rebuilds = sum(shard._flat.rebuilds for shard in index._indexes)
            table.add(
                phase="scale",
                backend=backend,
                curve="zorder",
                subscriptions=population,
                build_seconds=round(build_seconds, 3),
                inserts_per_second=round(build_rate, 1),
                speedup_vs_baseline=round(build_rate / baseline_rate, 2),
                any_match_events_per_second=round(num_events / any_seconds, 1),
                matching_hit_rate=round(sum(any_results) / num_events, 4),
                delivery_events_per_second=round(
                    num_delivery_events / delivery_seconds, 1
                ),
                delivered_matches=sum(len(ids) for ids in deliveries),
                segments=index.segment_count(),
                member_entries=member_entries,
                rebuilds=rebuilds,
                peak_rss_mb=round(
                    resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
                ),
            )
    return table


# ----------------------------------------------------------------- auto tuning
def run_auto_tuning_experiment(
    scenario_names: Sequence[str] = ("stock", "sensor", "auction"),
    static_curves: Sequence[str] = ("zorder", "hilbert", "gray"),
    num_brokers: int = 7,
    num_subscriptions: int = 240,
    num_events: int = 360,
    warmup_events: int = 120,
    order: int = 9,
    epsilon: float = 0.2,
    start_run_budget: int = 1,
    drift_threshold: float = 0.05,
    min_lookups: int = 4,
    cooldown: int = 1,
    sample_subscriptions: int = 24,
    probe_log_capacity: int = 32,
    seed: int = 31,
) -> ResultTable:
    """E-TUNE: the online self-tuning index vs every static configuration.

    Models a *drifted deployment*: every network starts from the same
    initial :class:`~repro.index.config.IndexConfig` (``start_run_budget``
    coarsens each subscription's decomposition down hard, the kind of config
    an operator might pin for a sparse install-time workload), then serves an
    application scenario that punishes it with false positives.  The static
    networks — one per curve, all on the initial run budget — are stuck with
    their config; the tuned network starts *identically* to the first static
    one but carries an :class:`~repro.tuning.AutoTuner` that re-curves /
    re-decomposes each drifting interface online via staged rebuild + atomic
    generation swap.

    Protocol per scenario: batch-subscribe everything, publish a warm-up wave
    (the tuner adapts during it), snapshot the deterministic work counters,
    publish the measurement wave, and report the *measurement-window* work —
    candidates checked per event, the backend-independent unit every other
    matching experiment uses.  Wall-clock throughput is reported alongside
    but the acceptance comparison is on work units.

    The driver asserts the tuned ≡ static differential inline: per-event
    delivery sets must be identical across every configuration, tuned or not
    — tuning may change work, never semantics.
    """
    import random as _random

    from ..index.config import IndexConfig
    from ..workloads.scenarios import (
        auction_scenario,
        sensor_network_scenario,
        stock_market_scenario,
    )

    if not 0 < warmup_events < num_events:
        raise ValueError(
            f"warmup_events must lie in (0, num_events), got {warmup_events}/{num_events}"
        )
    scenario_factories = {
        "stock": stock_market_scenario,
        "sensor": sensor_network_scenario,
        "auction": auction_scenario,
    }
    table = ResultTable("E-TUNE: self-tuning index vs static configs (drifted start)")

    for scenario_name in scenario_names:
        scenario = scenario_factories[scenario_name](
            num_subscriptions=num_subscriptions,
            num_events=num_events,
            order=order,
            seed=seed,
        )
        schema = scenario.schema
        subscriptions = [
            Subscription(schema, constraints, sub_id=f"{scenario_name}-sub-{i}")
            for i, constraints in enumerate(scenario.subscriptions)
        ]
        events = [
            Event(schema, values, event_id=f"{scenario_name}-event-{i}")
            for i, values in enumerate(scenario.events)
        ]
        rng = _random.Random(seed + 1)
        batches: Dict[int, List[Tuple[str, Subscription]]] = {}
        for sub in subscriptions:
            batches.setdefault(rng.randrange(num_brokers), []).append(
                (f"client-{sub.sub_id}", sub)
            )
        origins = [rng.randrange(num_brokers) for _ in events]

        def run_one(config: IndexConfig, tuned: bool):
            network = BrokerNetwork.from_topology(
                schema,
                tree_topology(num_brokers),
                covering="approximate",
                epsilon=epsilon,
                matching="sfc",
                seed=seed,
                config=config,
            )
            tuner = (
                network.attach_tuner(
                    drift_threshold=drift_threshold,
                    min_lookups=min_lookups,
                    cooldown=cooldown,
                    sample_subscriptions=sample_subscriptions,
                    probe_log_capacity=probe_log_capacity,
                )
                if tuned
                else None
            )
            for broker_id, items in batches.items():
                network.subscribe_batch(broker_id, items)
            delivered: Dict[Hashable, frozenset] = {}
            for event, origin in zip(events[:warmup_events], origins):
                delivered[event.event_id] = frozenset(network.publish(origin, event))
            work_before = [
                broker.routing_table.match_work()
                for broker in network.brokers.values()
            ]
            start = time.perf_counter()
            for event, origin in zip(
                events[warmup_events:], origins[warmup_events:]
            ):
                delivered[event.event_id] = frozenset(network.publish(origin, event))
            seconds = time.perf_counter() - start
            work_after = [
                broker.routing_table.match_work()
                for broker in network.brokers.values()
            ]
            candidates = sum(a[1] - b[1] for a, b in zip(work_after, work_before))
            false_positives = sum(a[2] - b[2] for a, b in zip(work_after, work_before))
            segments = sum(
                broker.routing_table.match_segments()
                for broker in network.brokers.values()
            )
            return network, tuner, delivered, candidates, false_positives, segments, seconds

        measured = num_events - warmup_events
        deliveries: Dict[str, Dict[Hashable, frozenset]] = {}
        for curve in static_curves:
            config = IndexConfig(curve=curve, run_budget=start_run_budget)
            _, _, delivered, candidates, fps, segments, seconds = run_one(
                config, tuned=False
            )
            deliveries[f"static:{curve}"] = delivered
            table.add(
                scenario=scenario_name,
                config=f"static:{curve}",
                events=measured,
                candidates_checked=candidates,
                false_positives=fps,
                work_per_event=round(candidates / measured, 2),
                segments=segments,
                rebuilds=0,
                swaps=0,
                seconds=round(seconds, 4),
            )

        config = IndexConfig(curve=static_curves[0], run_budget=start_run_budget)
        _, tuner, delivered, candidates, fps, segments, seconds = run_one(
            config, tuned=True
        )
        deliveries["tuned"] = delivered
        counters = tuner.counters()
        table.add(
            scenario=scenario_name,
            config="tuned",
            events=measured,
            candidates_checked=candidates,
            false_positives=fps,
            work_per_event=round(candidates / measured, 2),
            segments=segments,
            rebuilds=counters["rebuilds"],
            swaps=counters["swaps"],
            seconds=round(seconds, 4),
        )

        baseline_name = f"static:{static_curves[0]}"
        baseline = deliveries[baseline_name]
        for name, delivered in deliveries.items():
            if delivered != baseline:
                differing = [
                    event_id
                    for event_id in baseline
                    if delivered.get(event_id) != baseline[event_id]
                ]
                raise AssertionError(
                    f"delivery sets differ between {baseline_name!r} and {name!r} on "
                    f"{scenario_name} for events {differing[:5]} — tuning must "
                    "never change semantics"
                )
    return table
