"""Tests for the subscription-merging extension."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.merging import (
    GreedyMerger,
    bounding_ranges,
    merge_precision,
)
from repro.geometry.transform import ranges_cover


class TestBoundingRanges:
    def test_basic(self):
        assert bounding_ranges([[(0, 5), (10, 20)], [(3, 9), (0, 15)]]) == ((0, 9), (0, 20))

    def test_single_subscription(self):
        assert bounding_ranges([[(3, 7)]]) == ((3, 7),)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            bounding_ranges([])

    def test_mismatched_attributes_rejected(self):
        with pytest.raises(ValueError):
            bounding_ranges([[(0, 1)], [(0, 1), (2, 3)]])

    def test_bounding_box_covers_every_member(self):
        rng = random.Random(1)
        for _ in range(30):
            group = []
            for _ in range(rng.randint(1, 5)):
                ranges = []
                for _ in range(3):
                    lo = rng.randint(0, 100)
                    ranges.append((lo, lo + rng.randint(0, 40)))
                group.append(tuple(ranges))
            box = bounding_ranges(group)
            for member in group:
                assert ranges_cover(box, member)


class TestMergePrecision:
    def test_perfect_when_nested(self):
        assert merge_precision([[(0, 9)], [(2, 5)]]) == 1.0

    def test_adjacent_intervals_perfect(self):
        assert merge_precision([[(0, 4)], [(5, 9)]]) == 1.0

    def test_disjoint_far_apart_is_low(self):
        assert merge_precision([[(0, 0)], [(99, 99)]]) == pytest.approx(2 / 100)

    def test_capped_at_one(self):
        # Heavily overlapping subscriptions would sum above the box volume.
        assert merge_precision([[(0, 9)], [(0, 9)], [(0, 9)]]) == 1.0


class TestGreedyMerger:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GreedyMerger(min_precision=0.0)
        with pytest.raises(ValueError):
            GreedyMerger(min_precision=1.5)
        with pytest.raises(ValueError):
            GreedyMerger(max_rounds=0)

    def test_empty_input(self):
        report = GreedyMerger().merge({})
        assert report.merged_count == 0
        assert report.reduction == 0.0

    def test_covered_subscriptions_absorbed_losslessly(self):
        merger = GreedyMerger(min_precision=1.0)
        report = merger.merge(
            {
                "wide": [(0, 100), (0, 100)],
                "narrow": [(10, 20), (10, 20)],
                "other": [(200, 220), (200, 220)],
            }
        )
        assert report.merged_count == 2
        by_members = {frozenset(s.members) for s in report.summaries}
        assert frozenset({"wide", "narrow"}) in by_members
        # With min_precision=1.0 the summaries introduce no false-positive volume.
        for summary in report.summaries:
            assert summary.precision == 1.0

    def test_lossy_merge_reduces_entries(self):
        merger = GreedyMerger(min_precision=0.4)
        subscriptions = {
            f"s{i}": [(10 * i, 10 * i + 8)] for i in range(6)
        }  # six adjacent-ish intervals
        report = merger.merge(subscriptions)
        assert report.merged_count < len(subscriptions)
        assert report.reduction > 0
        # Every original is covered by the summary that contains it.
        for summary in report.summaries:
            for member in summary.members:
                assert ranges_cover(summary.ranges, tuple(subscriptions[member]))

    def test_precision_threshold_blocks_bad_merges(self):
        merger = GreedyMerger(min_precision=0.9)
        report = merger.merge({"a": [(0, 1)], "b": [(1000, 1001)]})
        assert report.merged_count == 2  # far-apart intervals are not merged

    def test_summary_covering_lookup(self):
        merger = GreedyMerger(min_precision=0.5)
        report = merger.merge({"a": [(0, 50)], "b": [(40, 100)]})
        summary = report.summary_covering([(10, 90)])
        assert summary is not None
        assert ranges_cover(summary.ranges, ((10, 90),))
        assert report.summary_covering([(0, 5000)]) is None

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_property_summaries_cover_members(self, data):
        count = data.draw(st.integers(1, 12))
        subscriptions = {}
        for i in range(count):
            ranges = []
            for _ in range(2):
                lo = data.draw(st.integers(0, 200))
                ranges.append((lo, lo + data.draw(st.integers(0, 50))))
            subscriptions[f"s{i}"] = tuple(ranges)
        threshold = data.draw(st.sampled_from([0.3, 0.6, 1.0]))
        report = GreedyMerger(min_precision=threshold).merge(subscriptions)
        # Partition: every original appears in exactly one summary.
        seen = [m for summary in report.summaries for m in summary.members]
        assert sorted(seen) == sorted(subscriptions)
        # Coverage: a summary covers each of its members (no lost events).
        for summary in report.summaries:
            for member in summary.members:
                assert ranges_cover(summary.ranges, subscriptions[member])
            assert summary.precision >= 0.0
        assert 0 <= report.reduction < 1
