"""Cross-curve differential suite: Z-order, Hilbert and Gray agree on semantics.

The routing stack is curve-pluggable — the match index, the approximate
covering detector and the shared profile cache are all keyed by a
``SpaceFillingCurve`` — and the paper's machinery guarantees that the choice
can only change *statistics* (run counts, segment counts, probe costs), never
*semantics*: match answers are restored to exactness by the rectangle
fallback check, and covering witnesses are verified dominators regardless of
the probe order that found them.

This suite pins that claim end to end:

* identical scripted workloads (``run_scripted_lockstep``) on tree/chain/star
  × sync/sim leave every curve with the same per-event delivery sets as the
  linear-scan/flat oracle, and clean audits;
* with exact covering, the learnt routing state is byte-identical across
  curves (the curve then only touches event matching, which is exact);
* suppression decisions are sound under every curve — each recorded cover
  really covers its dependant (``ranges_cover`` oracle);
* a hypothesis harness drives random subscribe/publish/withdraw interleavings
  through all three curves against the flat oracle;
* the per-curve match index stabs exactly the points each rectangle contains
  even under run-budget coarsening (rectangle-fallback soundness);
* mis-configuration fails loudly: unknown curve kinds, curves over the wrong
  universe, and cross-curve plan execution all raise instead of mis-keying.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx_dominance import ApproximateDominanceIndex, build_dominance_plan
from repro.core.covering import ApproximateCoveringDetector, CoveringProfiler
from repro.geometry.transform import ranges_cover
from repro.geometry.universe import Universe
from repro.pubsub.match_index import MatchIndex
from repro.pubsub.network import (
    BrokerNetwork,
    chain_topology,
    star_topology,
    tree_topology,
)
from repro.pubsub.routing_table import make_covering_strategy
from repro.pubsub.schema import Attribute, AttributeSchema
from repro.pubsub.subscription import Event, Subscription
from repro.sfc.factory import CURVE_KINDS, make_curve
from repro.sim.latency import FixedLatency
from repro.sim.transport import SimTransport
from repro.workloads.dynamics import run_scripted_lockstep, subscription_churn_script
from repro.workloads.scenarios import stock_market_scenario

NUM_BROKERS = 7
BROKER_IDS = list(range(NUM_BROKERS))

TOPOLOGIES = {
    "tree": tree_topology,
    "chain": chain_topology,
    "star": star_topology,
}


def small_scenario():
    return stock_market_scenario(num_subscriptions=30, num_events=16, order=7, seed=7)


def make_network(schema, topology, transport_kind, curve, covering="approximate"):
    transport = (
        SimTransport(FixedLatency(0.05), seed=5) if transport_kind == "sim" else None
    )
    return BrokerNetwork.from_topology(
        schema,
        TOPOLOGIES[topology](NUM_BROKERS),
        covering=covering,
        epsilon=0.2,
        cube_budget=500,
        matching="sfc",
        curve=curve,
        transport=transport,
    )


def deliveries_by_event(network):
    """Normalised {event_id: frozenset(client_id)} over everything delivered."""
    out = {}
    for record in network.deliveries:
        out.setdefault(record.event_id, set()).add(record.client_id)
    return {event_id: frozenset(clients) for event_id, clients in out.items()}


def assert_suppression_sound(network):
    """Every suppressed subscription's recorded cover must really cover it."""
    for broker in network.brokers.values():
        for neighbor_id, suppressed in broker._suppressed.items():
            for sub_id, subscription in suppressed.items():
                cover_id = broker._cover_of[neighbor_id][sub_id]
                cover = broker._forwarded_ids[neighbor_id].get(cover_id)
                assert cover is not None, (
                    f"broker {broker.broker_id}: {sub_id} suppressed behind "
                    f"{cover_id}, which was never forwarded on {neighbor_id}"
                )
                assert ranges_cover(cover.ranges, subscription.ranges), (
                    f"broker {broker.broker_id}: recorded cover {cover_id} does "
                    f"not cover {sub_id} — unsound suppression"
                )


class TestScriptedLockstepDifferential:
    """Identical scripts under every curve ⇒ identical delivery semantics."""

    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("transport_kind", ["sync", "sim"])
    def test_churn_storm_deliveries_match_oracle(self, topology, transport_kind):
        scenario = small_scenario()
        script = subscription_churn_script(scenario, BROKER_IDS, seed=3)
        probe_rng = random.Random(23)
        probes = [
            (
                Event(
                    scenario.schema,
                    {
                        name: probe_rng.uniform(
                            scenario.schema.attribute(name).low,
                            scenario.schema.attribute(name).high,
                        )
                        for name in scenario.schema.names
                    },
                    event_id=f"probe-{i}",
                ),
                probe_rng.randrange(NUM_BROKERS),
            )
            for i in range(10)
        ]

        results = {}
        # The flat oracle: linear-scan matching, exact (linear) covering.
        for label, curve, covering, matching in [
            ("oracle", "zorder", "exact", "linear"),
            *[(kind, kind, "approximate", "sfc") for kind in CURVE_KINDS],
        ]:
            transport = (
                SimTransport(FixedLatency(0.05), seed=5)
                if transport_kind == "sim"
                else None
            )
            network = BrokerNetwork.from_topology(
                scenario.schema,
                TOPOLOGIES[topology](NUM_BROKERS),
                covering=covering,
                epsilon=0.2,
                cube_budget=500,
                matching=matching,
                curve=curve,
                transport=transport,
            )
            run_scripted_lockstep(network, script)
            delivered = deliveries_by_event(network)
            for event, origin in probes:
                missed, extra = network.publish_and_audit(origin, event)
                assert missed == set() and extra == set(), (label, event.event_id)
                delivered[event.event_id] = frozenset(
                    network.expected_recipients(event, origin=origin)
                )
            assert_suppression_sound(network)
            results[label] = delivered

        for kind in CURVE_KINDS:
            assert results[kind] == results["oracle"], (
                f"{kind} delivery sets diverged from the flat oracle on "
                f"{topology}/{transport_kind}"
            )

    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_exact_covering_state_identical_across_curves(self, topology):
        """With exact covering the curve only drives event matching, which is
        exact — so the learnt routing state must be byte-identical."""
        scenario = small_scenario()
        script = subscription_churn_script(scenario, BROKER_IDS, seed=3)
        states = {}
        for curve in CURVE_KINDS:
            network = make_network(
                scenario.schema, topology, "sync", curve, covering="exact"
            )
            run_scripted_lockstep(network, script)
            states[curve] = network.routing_state()
        assert states["hilbert"] == states["zorder"]
        assert states["gray"] == states["zorder"]


# ---------------------------------------------------------------- hypothesis
def _grid_schema(order: int = 6) -> AttributeSchema:
    side = float((1 << order) - 1)
    return AttributeSchema(
        [Attribute("x", 0.0, side), Attribute("y", 0.0, side)], order=order
    )


_SCHEMA6 = _grid_schema(6)
_MAX_CELL = _SCHEMA6.max_cell


def _range_strategy():
    return st.tuples(
        st.integers(0, _MAX_CELL), st.integers(0, _MAX_CELL)
    ).map(lambda pair: (min(pair), max(pair)))


def _rect_strategy():
    return st.tuples(_range_strategy(), _range_strategy())


@st.composite
def _workloads(draw):
    rects = draw(st.lists(_rect_strategy(), min_size=1, max_size=8))
    withdraw_mask = draw(
        st.lists(st.booleans(), min_size=len(rects), max_size=len(rects))
    )
    cells = draw(
        st.lists(
            st.tuples(st.integers(0, _MAX_CELL), st.integers(0, _MAX_CELL)),
            min_size=1,
            max_size=6,
        )
    )
    placements = draw(
        st.lists(
            st.integers(0, 3), min_size=len(rects) + len(cells),
            max_size=len(rects) + len(cells),
        )
    )
    return rects, withdraw_mask, cells, placements


class TestHypothesisDifferential:
    @given(workload=_workloads())
    @settings(max_examples=25, deadline=None)
    def test_random_lifecycles_agree_with_flat_oracle(self, workload):
        """subscribe all → publish → withdraw some → publish, per curve, vs
        the linear-scan oracle (the network's own ground-truth audit)."""
        rects, withdraw_mask, cells, placements = workload
        subscriptions = [
            Subscription(
                _SCHEMA6,
                {"x": (float(xlo), float(xhi)), "y": (float(ylo), float(yhi))},
                sub_id=f"s{i}",
            )
            for i, ((xlo, xhi), (ylo, yhi)) in enumerate(rects)
        ]
        events = [
            Event(
                _SCHEMA6,
                {"x": float(x), "y": float(y)},
                event_id=f"e{i}",
            )
            for i, (x, y) in enumerate(cells)
        ]
        deliveries = {}
        for curve in CURVE_KINDS:
            network = BrokerNetwork.from_topology(
                _SCHEMA6,
                tree_topology(4),
                covering="approximate",
                epsilon=0.2,
                cube_budget=300,
                matching="sfc",
                curve=curve,
            )
            for i, subscription in enumerate(subscriptions):
                network.subscribe(placements[i], f"c{i}", subscription)
            log = []
            for j, event in enumerate(events):
                origin = placements[len(subscriptions) + j]
                missed, extra = network.publish_and_audit(origin, event)
                assert missed == set() and extra == set(), (curve, event.event_id)
                log.append(frozenset(network.expected_recipients(event, origin=origin)))
            for i, withdrawn in enumerate(withdraw_mask):
                if withdrawn:
                    network.unsubscribe(f"c{i}", f"s{i}")
            for j, event in enumerate(events):
                origin = placements[len(subscriptions) + j]
                missed, extra = network.publish_and_audit(origin, event)
                assert missed == set() and extra == set(), (curve, "post", event.event_id)
                log.append(frozenset(network.expected_recipients(event, origin=origin)))
            assert_suppression_sound(network)
            deliveries[curve] = log
        assert deliveries["hilbert"] == deliveries["zorder"]
        assert deliveries["gray"] == deliveries["zorder"]

    @given(
        rects=st.lists(_rect_strategy(), min_size=1, max_size=10),
        probes=st.lists(
            st.tuples(st.integers(0, _MAX_CELL), st.integers(0, _MAX_CELL)),
            min_size=1,
            max_size=20,
        ),
        run_budget=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_match_index_rectangle_fallback_sound_per_curve(
        self, rects, probes, run_budget
    ):
        """Per curve, the (coarsened) match index stabs exactly the points
        each rectangle contains — no false negatives from decomposition, no
        false positives surviving the rectangle check."""
        for curve in CURVE_KINDS:
            index = MatchIndex(_SCHEMA6, run_budget=run_budget, curve=curve)
            for i, rect in enumerate(rects):
                index.add(f"s{i}", rect)
            for cell in probes:
                expected = {
                    f"s{i}"
                    for i, ((xlo, xhi), (ylo, yhi)) in enumerate(rects)
                    if xlo <= cell[0] <= xhi and ylo <= cell[1] <= yhi
                }
                assert set(index.matching_ids(cell)) == expected, (curve, cell)
                assert index.any_match(cell) == bool(expected), (curve, cell)


# ------------------------------------------------------------- configuration
class TestCurveConfigurationErrors:
    def test_unknown_curve_kind_rejected_everywhere(self):
        schema = _grid_schema(5)
        with pytest.raises(ValueError, match="unknown curve kind"):
            MatchIndex(schema, curve="peano")
        with pytest.raises(ValueError, match="unknown curve kind"):
            make_covering_strategy("approximate", schema, curve="peano")
        with pytest.raises(ValueError, match="unknown curve kind"):
            BrokerNetwork.from_topology(
                schema, tree_topology(2), covering="approximate", curve="peano"
            )

    def test_plan_rejects_curve_over_wrong_universe(self):
        """A curve whose order does not match the universe's bit depth would
        silently mis-key every probe; the plan builder must refuse it."""
        universe = Universe(dims=2, order=6)
        wrong_order = make_curve("hilbert", Universe(dims=2, order=5))
        wrong_dims = make_curve("zorder", Universe(dims=3, order=6))
        for curve in (wrong_order, wrong_dims):
            with pytest.raises(ValueError, match="does not match"):
                build_dominance_plan(
                    universe, (1, 2), epsilon=0.1, cube_budget=100, curve=curve
                )

    def test_execute_plan_rejects_cross_curve_plan(self):
        universe = Universe(dims=2, order=5)
        index = ApproximateDominanceIndex(
            universe=universe, epsilon=0.1, curve=make_curve("zorder", universe)
        )
        plan = build_dominance_plan(
            universe,
            (3, 4),
            epsilon=0.1,
            cube_budget=100,
            curve=make_curve("hilbert", universe),
        )
        with pytest.raises(ValueError, match="hilbert"):
            index.execute_plan(plan)

    def test_cross_curve_profile_falls_back_to_correct_answer(self):
        """A profile built under another curve is incompatible; the detector
        must fall back to the classic search and still answer correctly."""
        detector = ApproximateCoveringDetector(
            attributes=1, attribute_order=6, epsilon=0.1, curve="zorder"
        )
        detector.add_subscription("wide", [(0, 60)])
        profiler = CoveringProfiler(1, 6, epsilon=0.1, curve="hilbert")
        profile = profiler.profile([(10, 20)])
        assert not detector.compatible_profile(profile)
        result = detector.find_covering_profile(profile)
        assert result.covering_id == "wide"

    def test_matched_curve_profile_is_compatible(self):
        detector = ApproximateCoveringDetector(
            attributes=1, attribute_order=6, epsilon=0.1, curve="hilbert"
        )
        profiler = CoveringProfiler(
            1, 6, epsilon=0.1, cube_budget=detector.cube_budget, curve="hilbert"
        )
        assert detector.compatible_profile(profiler.profile([(10, 20)]))
