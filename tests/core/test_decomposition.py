"""Tests for the greedy standard-cube decomposition (Lemmas 3.2–3.5 machinery)."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.decomposition import (
    count_cubes_extremal,
    cubes_in_class,
    cumulative_volume_at_level,
    decompose_rectangle,
    greedy_decomposition,
    level_census,
    truncation_bits,
    zorder_key_ranges_in_class,
)
from repro.geometry.bits import bit_at, bit_length
from repro.geometry.rect import ExtremalRectangle, Rectangle
from repro.geometry.universe import Universe
from repro.sfc.zorder import ZOrderCurve


def random_lengths(rng, universe):
    return tuple(rng.randint(1, universe.side) for _ in range(universe.dims))


class TestTruncationBits:
    def test_paper_value(self):
        # m = ceil(log2(2d/ε)) for d=4, ε=0.05 → ceil(log2(160)) = 8
        assert truncation_bits(4, 0.05) == 8

    def test_small_dims(self):
        assert truncation_bits(1, 0.5) == 2
        assert truncation_bits(2, 0.5) == 3

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            truncation_bits(0, 0.1)
        with pytest.raises(ValueError):
            truncation_bits(2, 0.0)
        with pytest.raises(ValueError):
            truncation_bits(2, 1.0)

    @given(st.integers(1, 8), st.floats(0.001, 0.999))
    def test_lemma32_guarantee_holds(self, dims, epsilon):
        """Choosing m = truncation_bits guarantees coverage ≥ 1 − ε (Lemma 3.2)."""
        m = truncation_bits(dims, epsilon)
        assert 2 * dims / (2**m) <= epsilon + 1e-12


class TestLevelCensus:
    def test_single_cube_region(self):
        universe = Universe(dims=2, order=9)
        region = ExtremalRectangle(universe, (256, 256))
        census = level_census(region)
        assert len(census) == 1
        assert census[0].num_cubes == 1
        assert census[0].cube_side == 256
        assert census[0].cumulative_volume == 256 * 256

    def test_fig2_census(self):
        """The 257×257 region: one 256-cube plus 513 unit cells (total 514 cubes)."""
        universe = Universe(dims=2, order=9)
        region = ExtremalRectangle(universe, (257, 257))
        census = level_census(region)
        assert [c.cube_side for c in census] == [256, 1]
        assert census[0].num_cubes == 1
        assert census[1].num_cubes == 513
        assert census[1].cumulative_volume == 257 * 257

    def test_census_is_descending_in_cube_side(self):
        universe = Universe(dims=3, order=6)
        region = ExtremalRectangle(universe, (37, 22, 64))
        census_list = level_census(region)
        sides = [c.cube_side for c in census_list]
        assert sides == sorted(sides, reverse=True)
        assert all(c.num_cubes > 0 for c in census_list)

    def test_lemma34_nonempty_iff_bit_set(self):
        """D_i is non-empty exactly when some side length has bit i set (below b(ℓ_min))."""
        universe = Universe(dims=2, order=8)
        lengths = (0b10110, 0b11001)
        region = ExtremalRectangle(universe, lengths)
        census = {c.bit_index: c for c in level_census(region)}
        min_bits = min(bit_length(v) for v in lengths)
        for i in range(min_bits):
            expected_nonempty = any(bit_at(v, i) for v in lengths)
            assert (i in census) == expected_nonempty

    def test_volumes_sum_to_region_volume(self):
        universe = Universe(dims=3, order=5)
        rng = random.Random(1)
        for _ in range(20):
            region = ExtremalRectangle(universe, random_lengths(rng, universe))
            census = level_census(region)
            total = sum(c.num_cubes * c.cube_volume for c in census)
            assert total == region.volume

    def test_cumulative_volume_matches_suffix_product(self):
        universe = Universe(dims=2, order=7)
        lengths = (100, 87)
        region = ExtremalRectangle(universe, lengths)
        for cls in level_census(region):
            assert cls.cumulative_volume == cumulative_volume_at_level(lengths, cls.bit_index)


class TestCubesInClass:
    def test_counts_match_census(self):
        universe = Universe(dims=3, order=5)
        rng = random.Random(7)
        for _ in range(15):
            region = ExtremalRectangle(universe, random_lengths(rng, universe))
            for cls in level_census(region):
                enumerated = list(cubes_in_class(region, cls.bit_index))
                assert len(enumerated) == cls.num_cubes
                assert all(cube.side == cls.cube_side for cube in enumerated)

    def test_cubes_are_disjoint_and_inside_region(self):
        universe = Universe(dims=2, order=6)
        region = ExtremalRectangle(universe, (45, 29))
        rect = region.as_rectangle()
        all_cubes = []
        for cls in level_census(region):
            all_cubes.extend(cubes_in_class(region, cls.bit_index))
        for cube in all_cubes:
            assert rect.contains_rectangle(cube.as_rectangle())
        for a, b in itertools.combinations(all_cubes, 2):
            assert not a.as_rectangle().intersects(b.as_rectangle())

    def test_zorder_fast_path_matches_generic(self):
        universe = Universe(dims=3, order=4)
        curve = ZOrderCurve(universe)
        rng = random.Random(13)
        for _ in range(20):
            region = ExtremalRectangle(universe, random_lengths(rng, universe))
            for cls in level_census(region):
                generic = sorted(
                    curve.cube_key_range(c) for c in cubes_in_class(region, cls.bit_index)
                )
                fast = sorted(zorder_key_ranges_in_class(region, cls.bit_index))
                assert generic == fast


class TestGreedyDecomposition:
    def test_matches_quadtree_decomposition_size(self):
        """Greedy (Lemma 3.3) and maximal-cube decompositions are both minimum."""
        rng = random.Random(3)
        for _ in range(25):
            dims = rng.choice([2, 3])
            order = rng.choice([3, 4])
            universe = Universe(dims, order)
            region = ExtremalRectangle(universe, random_lengths(rng, universe))
            greedy = greedy_decomposition(region)
            quadtree = decompose_rectangle(universe, region.as_rectangle())
            assert len(greedy) == len(quadtree) == count_cubes_extremal(region)
            assert sum(c.volume for c in greedy) == region.volume

    def test_exact_partition_covers_every_cell(self):
        universe = Universe(dims=2, order=4)
        region = ExtremalRectangle(universe, (5, 11))
        cubes = greedy_decomposition(region)
        covered = set()
        for cube in cubes:
            for cell in cube.as_rectangle().cells():
                assert cell not in covered
                covered.add(cell)
        assert covered == set(region.as_rectangle().cells())

    def test_max_cubes_cap(self):
        universe = Universe(dims=2, order=9)
        region = ExtremalRectangle(universe, (257, 257))
        with pytest.raises(ValueError):
            greedy_decomposition(region, max_cubes=100)

    def test_largest_first_ordering(self):
        universe = Universe(dims=2, order=6)
        region = ExtremalRectangle(universe, (33, 47))
        sides = [c.side for c in greedy_decomposition(region)]
        assert sides == sorted(sides, reverse=True)


class TestDecomposeRectangle:
    def test_whole_universe_is_one_cube(self):
        universe = Universe(dims=2, order=4)
        whole = Rectangle((0, 0), (15, 15))
        cubes = decompose_rectangle(universe, whole)
        assert len(cubes) == 1
        assert cubes[0].side == 16

    def test_single_cell(self):
        universe = Universe(dims=2, order=4)
        cubes = decompose_rectangle(universe, Rectangle((3, 9), (3, 9)))
        assert len(cubes) == 1
        assert cubes[0].side == 1

    def test_partition_is_exact(self):
        universe = Universe(dims=2, order=4)
        rng = random.Random(5)
        for _ in range(20):
            x0, y0 = rng.randint(0, 15), rng.randint(0, 15)
            x1, y1 = rng.randint(x0, 15), rng.randint(y0, 15)
            rect = Rectangle((x0, y0), (x1, y1))
            cubes = decompose_rectangle(universe, rect)
            assert sum(c.volume for c in cubes) == rect.volume
            cells = set()
            for cube in cubes:
                cells.update(cube.as_rectangle().cells())
            assert cells == set(rect.cells())

    def test_maximality_no_mergeable_siblings(self):
        """No four sibling cubes of the output can be merged into their parent."""
        universe = Universe(dims=2, order=5)
        rect = Rectangle((1, 1), (22, 17))
        cubes = decompose_rectangle(universe, rect)
        by_parent = {}
        for cube in cubes:
            parent_side = cube.side * 2
            parent_low = tuple((x // parent_side) * parent_side for x in cube.low)
            by_parent.setdefault((parent_low, parent_side), []).append(cube)
        for (parent_low, parent_side), children in by_parent.items():
            if parent_side > universe.side:
                continue
            assert len(children) < 4

    def test_dimension_mismatch_rejected(self):
        universe = Universe(dims=3, order=3)
        with pytest.raises(ValueError):
            decompose_rectangle(universe, Rectangle((0, 0), (1, 1)))

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_property_extremal_equals_general(self, data):
        """For extremal rectangles the two decomposition routes agree exactly."""
        dims = data.draw(st.integers(2, 3))
        order = data.draw(st.integers(2, 4))
        universe = Universe(dims, order)
        lengths = tuple(
            data.draw(st.integers(1, universe.side)) for _ in range(dims)
        )
        region = ExtremalRectangle(universe, lengths)
        greedy = {(c.low, c.side) for c in greedy_decomposition(region)}
        quadtree = {(c.low, c.side) for c in decompose_rectangle(universe, region.as_rectangle())}
        assert greedy == quadtree
