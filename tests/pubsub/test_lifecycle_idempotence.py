"""Idempotence regressions for the subscription lifecycle.

The withdrawal/promotion machinery keeps per-link bookkeeping (forwarded ids,
suppressed set, cover/dependents maps); these tests pin the degenerate
sequences that historically corrupt such state: duplicate unsubscribe,
unsubscribe-before-subscribe, and re-subscribe-after-withdraw — on every
topology, through both the legacy per-subscription API and the batch API.
"""

from __future__ import annotations

import pytest

from repro.pubsub.broker import LOCAL_INTERFACE
from repro.pubsub.network import (
    BrokerNetwork,
    chain_topology,
    star_topology,
    tree_topology,
)
from repro.pubsub.schema import Attribute, AttributeSchema
from repro.pubsub.subscription import Event, Subscription

TOPOLOGIES = {
    "tree": tree_topology,
    "chain": chain_topology,
    "star": star_topology,
}


@pytest.fixture
def schema():
    return AttributeSchema(
        [Attribute("x", 0.0, 100.0), Attribute("y", 0.0, 100.0)], order=8
    )


def make_network(schema, topology, covering="exact"):
    return BrokerNetwork.from_topology(
        schema, TOPOLOGIES[topology](5), covering=covering, epsilon=0.1
    )


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("api", ["legacy", "batch"])
class TestLifecycleIdempotence:
    def _subscribe(self, network, api, broker_id, client_id, subscription):
        if api == "batch":
            network.subscribe_batch(broker_id, [(client_id, subscription)])
        else:
            network.subscribe(broker_id, client_id, subscription)

    def _unsubscribe(self, network, api, client_id, sub_id):
        if api == "batch":
            return network.unsubscribe_batch([(client_id, sub_id)])[0]
        return network.unsubscribe(client_id, sub_id)

    def test_duplicate_unsubscribe_is_noop(self, schema, topology, api):
        network = make_network(schema, topology)
        sub = Subscription(schema, {"x": (0.0, 50.0)}, sub_id="dup")
        self._subscribe(network, api, 1, "alice", sub)
        baseline = None
        assert self._unsubscribe(network, api, "alice", "dup") is True
        baseline = network.routing_state()
        # Second (and third) withdrawal: found-flag False, state untouched.
        assert self._unsubscribe(network, api, "alice", "dup") is False
        assert self._unsubscribe(network, api, "alice", "dup") is False
        assert network.routing_state() == baseline
        assert network.routing_table_entries() == 0

    def test_unsubscribe_before_subscribe_is_noop(self, schema, topology, api):
        network = make_network(schema, topology)
        baseline = network.routing_state()
        assert self._unsubscribe(network, api, "ghost", "never") is False
        assert network.routing_state() == baseline
        # A stray withdrawal arriving on a broker interface is also harmless.
        broker = network.brokers[0]
        if api == "batch":
            broker.receive_unsubscription_batch(LOCAL_INTERFACE, ["never"])
        else:
            broker.receive_unsubscription(LOCAL_INTERFACE, "never")
        assert network.routing_state() == baseline
        # The network still works afterwards.
        sub = Subscription(schema, {"x": (0.0, 50.0)}, sub_id="s")
        self._subscribe(network, api, 3, "alice", sub)
        assert "alice" in network.publish(0, Event(schema, {"x": 10.0, "y": 10.0}))

    def test_resubscribe_after_withdraw_is_clean_reinstall(self, schema, topology, api):
        network = make_network(schema, topology)
        sub = Subscription(schema, {"x": (0.0, 50.0)}, sub_id="phoenix")
        self._subscribe(network, api, 2, "alice", sub)
        first_state = network.routing_state()
        assert self._unsubscribe(network, api, "alice", "phoenix") is True
        self._subscribe(network, api, 2, "alice", sub)
        # The reinstall reproduces the original state exactly...
        assert network.routing_state() == first_state
        # ...and a single withdrawal fully clears it again (no ghost refcount).
        assert self._unsubscribe(network, api, "alice", "phoenix") is True
        assert network.routing_table_entries() == 0
        assert "alice" not in network.publish(0, Event(schema, {"x": 10.0, "y": 10.0}))

    def test_covered_resubscribe_after_withdraw(self, schema, topology, api):
        """Withdraw and re-add a suppressed subscription: suppression state and
        the cover's dependents map must survive the round trip."""
        network = make_network(schema, topology)
        wide = Subscription(schema, {"x": (0.0, 90.0)}, sub_id="wide")
        narrow = Subscription(schema, {"x": (10.0, 20.0)}, sub_id="narrow")
        self._subscribe(network, api, 0, "w", wide)
        self._subscribe(network, api, 0, "n", narrow)
        suppressed_state = network.routing_state()
        assert self._unsubscribe(network, api, "n", "narrow") is True
        self._subscribe(network, api, 0, "n", narrow)
        assert network.routing_state() == suppressed_state
        # The dependents hand-off still promotes narrow when wide goes away.
        assert self._unsubscribe(network, api, "w", "wide") is True
        delivered = network.publish(4, Event(schema, {"x": 15.0, "y": 5.0}))
        assert delivered == {"n"}
