"""Rebuild-swap soundness: tuner swaps are invisible to delivery.

An interface table's staged rebuild + atomic generation swap re-indexes a
live interface under a different :class:`~repro.index.config.IndexConfig`
mid-stream.  Any config answers matching queries identically (the rectangle
fallback restores exactness), so swaps — injected at arbitrary points into
arbitrary subscribe/publish/unsubscribe interleavings — must never change a
delivery set.  A linear-matching oracle network pins the ground truth, and a
same-seed digest pins the tuned network's converged routing state.
"""

from __future__ import annotations

import hashlib
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.config import IndexConfig
from repro.obs.registry import MetricsRegistry
from repro.pubsub import BrokerNetwork, make_event, make_subscription, tree_topology
from repro.pubsub.routing_table import InterfaceTable
from repro.pubsub.schema import Attribute, AttributeSchema
from repro.workloads.dynamics import run_scripted_lockstep, subscription_churn_script
from repro.workloads.scenarios import stock_market_scenario

ORDER = 5  # 32×32 value cells — small enough for dense random coverage


def _schema():
    return AttributeSchema(
        [Attribute("x", 0.0, 32.0), Attribute("y", 0.0, 32.0)], order=ORDER
    )


# Swap targets deliberately span curves, run budgets and backends — including
# a curve different from the routing table's, exercising the key-compat path.
SWAP_CONFIGS = [
    IndexConfig(curve="hilbert", run_budget=4),
    IndexConfig(curve="gray", run_budget=2),
    IndexConfig(curve="zorder", run_budget=1),
    IndexConfig(curve="hilbert", backend="avl", run_budget=8),
]

_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("sub"),
            st.integers(0, 25),  # lo_x
            st.integers(1, 12),  # width_x
            st.integers(0, 25),  # lo_y
            st.integers(1, 12),  # width_y
            st.integers(0, 2),  # broker
        ),
        st.tuples(st.just("unsub"), st.integers(0, 100)),
        st.tuples(
            st.just("pub"),
            st.integers(0, 31),
            st.integers(0, 31),
            st.integers(0, 2),
        ),
        st.tuples(st.just("stage"), st.integers(0, 2), st.integers(0, 3)),
        st.tuples(st.just("commit"), st.integers(0, 2)),
    ),
    min_size=5,
    max_size=40,
)


@given(ops=_ops)
@settings(deadline=None)
def test_interleavings_with_swaps_match_linear_oracle(ops):
    schema = _schema()
    sfc = BrokerNetwork.from_topology(
        schema, tree_topology(3), matching="sfc", seed=1
    )
    oracle = BrokerNetwork.from_topology(schema, tree_topology(3), seed=1)
    active = []
    counter = 0
    for op in ops:
        if op[0] == "sub":
            _, lo_x, w_x, lo_y, w_y, broker = op
            sub_id = f"s{counter}"
            client = f"c{counter}"
            counter += 1
            for network in (sfc, oracle):
                network.subscribe(
                    broker,
                    client,
                    make_subscription(
                        schema,
                        sub_id,
                        x=(float(lo_x), float(min(32, lo_x + w_x))),
                        y=(float(lo_y), float(min(32, lo_y + w_y))),
                    ),
                )
            active.append((client, sub_id))
        elif op[0] == "unsub":
            if not active:
                continue
            client, sub_id = active.pop(op[1] % len(active))
            assert sfc.unsubscribe(client, sub_id)
            assert oracle.unsubscribe(client, sub_id)
        elif op[0] == "pub":
            _, x, y, broker = op
            event_id = f"e{counter}"
            counter += 1
            event = make_event(
                schema, event_id, x=float(x) + 0.5, y=float(y) + 0.5
            )
            assert sfc.publish(broker, event) == oracle.publish(broker, event)
        elif op[0] == "stage":
            _, broker, config_index = op
            for table in sfc.brokers[broker].routing_table.interface_tables().values():
                if table.match_index is not None and table.staged_config is None:
                    table.begin_rebuild(SWAP_CONFIGS[config_index])
        elif op[0] == "commit":
            _, broker = op
            for table in sfc.brokers[broker].routing_table.interface_tables().values():
                if table.staged_config is not None:
                    table.commit_rebuild()


def test_mixed_curve_swap_keeps_deliveries_exact():
    """Key-compat regression: a swap onto a foreign curve must recompute keys.

    The routing table precomputes each event's key under *its* curve; after
    an interface swaps to a different curve that key indexes garbage — the
    table must fall back to recomputing, or events silently vanish.
    """
    schema = _schema()
    swapped = BrokerNetwork.from_topology(
        schema, tree_topology(3), matching="sfc", curve="zorder", seed=2
    )
    control = BrokerNetwork.from_topology(
        schema, tree_topology(3), matching="sfc", curve="zorder", seed=2
    )
    rng = random.Random(9)
    for i in range(40):
        lo_x, lo_y = rng.uniform(0, 25), rng.uniform(0, 25)
        sub = make_subscription(
            schema,
            f"s{i}",
            x=(lo_x, lo_x + rng.uniform(1, 6)),
            y=(lo_y, lo_y + rng.uniform(1, 6)),
        )
        for network in (swapped, control):
            network.subscribe(i % 3, f"c{i}", sub)
    foreign = IndexConfig(curve="hilbert", run_budget=4)
    for broker in swapped.brokers.values():
        for table in broker.routing_table.interface_tables().values():
            if table.match_index is not None:
                table.begin_rebuild(foreign)
                table.commit_rebuild()
                assert table.match_index.curve.kind == "hilbert"
                assert table.generation == 1
    delivered_any = False
    for j in range(60):
        event = make_event(
            schema, f"e{j}", x=rng.uniform(0, 32), y=rng.uniform(0, 32)
        )
        expected = control.publish(j % 3, event)
        assert swapped.publish(j % 3, event) == expected
        delivered_any = delivered_any or bool(expected)
    assert delivered_any  # the comparison must not be vacuous


class TestRebuildApi:
    def _table(self):
        table = InterfaceTable(
            "if0", schema=_schema(), matching="sfc", config=IndexConfig()
        )
        table.add(make_subscription(_schema(), "s0", x=(1.0, 5.0), y=(2.0, 6.0)))
        return table

    def test_linear_table_cannot_rebuild(self):
        table = InterfaceTable("if0")
        with pytest.raises(ValueError, match="matching='sfc'"):
            table.begin_rebuild(IndexConfig())

    def test_double_stage_rejected(self):
        table = self._table()
        table.begin_rebuild(IndexConfig(curve="hilbert"))
        with pytest.raises(ValueError, match="already staged"):
            table.begin_rebuild(IndexConfig(curve="gray"))

    def test_commit_without_stage_rejected(self):
        with pytest.raises(ValueError, match="no staged rebuild"):
            self._table().commit_rebuild()

    def test_abort_discards_stage(self):
        table = self._table()
        assert not table.abort_rebuild()
        table.begin_rebuild(IndexConfig(curve="hilbert"))
        assert table.abort_rebuild()
        assert table.staged_config is None
        assert table.generation == 0

    def test_match_stats_monotone_across_swap(self):
        table = self._table()
        schema = _schema()
        for j in range(10):
            table.matching(make_event(schema, f"e{j}", x=3.0, y=4.0))
        before = table.match_stats()
        table.begin_rebuild(IndexConfig(curve="hilbert", run_budget=2))
        table.commit_rebuild()
        after = table.match_stats()
        assert after.lookups == before.lookups
        assert after.candidates_checked == before.candidates_checked
        # The rebuild's bulk reload is real work: inserts may only grow.
        assert after.inserts >= before.inserts
        for j in range(5):
            table.matching(make_event(schema, f"f{j}", x=3.0, y=4.0))
        assert table.match_stats().lookups == before.lookups + 5


def test_scrape_reports_per_interface_series(monkeypatch):
    monkeypatch.delenv("REPRO_AUTOTUNE", raising=False)  # absence check below
    schema = _schema()
    network = BrokerNetwork.from_topology(
        schema,
        tree_topology(3),
        matching="sfc",
        seed=4,
        metrics=MetricsRegistry(),
    )
    network.subscribe(
        0, "c0", make_subscription(schema, "s0", x=(1.0, 9.0), y=(1.0, 9.0))
    )
    network.publish(2, make_event(schema, "e0", x=4.0, y=4.0))
    scrape = network.scrape()
    assert "match_interface_total" in scrape
    assert 'gauge="segments"' in scrape
    assert 'counter="false_positives"' in scrape
    # No tuner attached → no tuner series (absence is meaningful: the
    # exposition stays byte-stable for untuned networks).
    assert "autotuner_total" not in scrape


def _digest(payload) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()[:16]


def test_tuned_network_digest_pin():
    """Same-seed tuned runs converge to one pinned routing state.

    The tuner's decisions are part of the deterministic surface: if this
    digest moves, tuning behaviour changed (not just performance) — re-pin
    only with an explanation in the same commit.
    """
    scenario = stock_market_scenario(
        num_subscriptions=25, num_events=10, order=7, seed=5
    )
    digests = set()
    swaps = 0
    for _ in range(2):
        network = BrokerNetwork.from_topology(
            scenario.schema,
            tree_topology(7),
            covering="approximate",
            epsilon=0.2,
            cube_budget=500,
            matching="sfc",
            run_budget=1,
            seed=5,
        )
        tuner = network.attach_tuner(
            drift_threshold=0.05, min_lookups=4, cooldown=1
        )
        script = subscription_churn_script(scenario, list(range(7)), seed=3)
        run_scripted_lockstep(network, script)
        digests.add(_digest(network.routing_state()))
        swaps = tuner.counters()["swaps"]
    # Same digest as the backend and curve pins in test_backend_parity /
    # test_seed_determinism: routing state is forwarding decisions, which
    # tuning never changes — only the per-interface index work differs.
    assert digests == {"2560e8cf4abaa55a"}
    assert swaps >= 0
