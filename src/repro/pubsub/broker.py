"""A content-based publish/subscribe broker with covering-based subscription propagation.

Each broker maintains:

* a :class:`RoutingTable` — per-interface subscription sets used to decide
  where events are forwarded (reverse-path forwarding on the subscription
  flow);
* one :class:`CoveringStrategy` per *outgoing* interface — the set of
  subscriptions already forwarded out of that interface, indexed so that
  "has something covering this already been forwarded?" is answerable
  quickly.  The strategy is the pluggable piece: none / exact linear scan /
  ε-approximate SFC / probabilistic.

Subscription propagation follows the standard covering optimisation: when a
subscription arrives on interface ``I`` it is stored in the table for ``I``
and considered for forwarding on every other interface ``J``.  It is actually
forwarded on ``J`` only when no previously forwarded subscription covers it
(according to the broker's covering strategy).  Because the SFC approximate
strategy is *sound* — it only ever reports true covers — suppression never
breaks delivery; it can merely happen less often than with exact covering.

The broker is a synchronous simulation object: the :class:`BrokerNetwork`
drives it by calling :meth:`receive_subscription` and :meth:`receive_event`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..core.covering import CoveringProfiler
from ..index.config import IndexConfig, resolve_index_config
from ..obs.profiler import profiled
from ..obs.trace import Span, TraceLog, make_detail
from .routing_table import (
    CoveringStrategy,
    RoutingTable,
    make_covering_strategy,
)
from .schema import AttributeSchema
from .stats import BrokerStats
from .subscription import Event, Subscription
from .subscription_store import ProfileCache, SubscriptionProfile, SubscriptionStore

__all__ = ["Broker", "ForwardDecision", "LOCAL_INTERFACE", "PROMOTION_KINDS"]

#: Pseudo-interface identifier for subscriptions registered by local clients.
LOCAL_INTERFACE = "__local__"

#: Withdrawal-promotion engines: ``incremental`` re-checks only the suppressed
#: subscriptions whose recorded cover was withdrawn (one dependents-map pop);
#: ``rescan`` is the legacy engine that re-checks every suppressed
#: subscription on the link after any forwarded withdrawal.
PROMOTION_KINDS = ("incremental", "rescan")


@dataclass(frozen=True)
class ForwardDecision:
    """Record of one propagation decision (useful for tests and traces)."""

    subscription_id: Hashable
    interface_id: Hashable
    forwarded: bool
    covered_by: Optional[Hashable]


@dataclass
class Broker:
    """One router of the publish/subscribe overlay.

    Parameters
    ----------
    broker_id:
        Unique identifier in the network.
    schema:
        Message schema shared by the whole network.
    covering:
        Covering strategy kind (``"none"``, ``"exact"``, ``"approximate"``,
        ``"probabilistic"``) applied independently per outgoing interface.
    epsilon:
        Approximation parameter for the ``"approximate"`` strategy.
    backend:
        Match-index backend (``"flat"`` — the default flattened segment
        store — ``"avl"``, ``"skiplist"``, ``"sortedlist"`` or ``"sharded"``).
        The approximate covering strategy uses the corresponding ordered-map
        backend (``"sharded"`` maps to the flat store its shards are built on).
    shards:
        Shard count of the ``"sharded"`` match backend (ignored otherwise).
    matching:
        Event-matching implementation per interface table: ``"linear"`` scans
        stored subscriptions, ``"sfc"`` routes events through the SFC match
        index (identical answers, indexed cost).
    run_budget:
        Per-subscription cap on key ranges stored by the ``"sfc"`` match index.
    curve:
        Space-filling-curve kind (:data:`~repro.sfc.factory.CURVE_KINDS`) used
        by both the ``"sfc"`` match index and the ``"approximate"`` covering
        strategy.  Curves change run/segment statistics, never semantics:
        delivery and audit results are identical under every kind.
    promotion:
        Withdrawal-promotion engine (see :data:`PROMOTION_KINDS`).
    profile_sharing:
        When True (default) each stored subscription's covering geometry —
        validated ranges, dominance point, probe plan — is computed once in
        the broker's :class:`SubscriptionStore` and shared by every link's
        covering checks (and by promotion re-checks).  False restores the
        legacy per-check recomputation; forwarding decisions are identical
        either way.
    profile_cache:
        Optional shared :class:`ProfileCache` (the network passes one cache
        to all its brokers so a subscription is profiled once network-wide).
    trace:
        Optional shared :class:`~repro.obs.trace.TraceLog` (the network hands
        its brokers the same log it records transport hops into).  When set,
        the broker records one ``route`` span per event it routes and one
        ``covering`` span per forwarding decision; when ``None`` (the
        default) instrumentation costs a single ``is not None`` test.
    """

    broker_id: Hashable
    schema: AttributeSchema
    covering: str = "approximate"
    epsilon: Optional[float] = None
    backend: Optional[str] = None
    shards: Optional[int] = None
    samples: int = 8
    seed: Optional[int] = None
    cube_budget: Optional[int] = None
    matching: str = "linear"
    run_budget: Optional[int] = None
    curve: Optional[str] = None
    promotion: str = "incremental"
    profile_sharing: bool = True
    profile_cache: Optional[ProfileCache] = None
    trace: Optional[TraceLog] = None
    config: Optional[IndexConfig] = None
    stats: BrokerStats = field(default_factory=BrokerStats)

    def __post_init__(self) -> None:
        if self.promotion not in PROMOTION_KINDS:
            raise ValueError(
                f"unknown promotion kind {self.promotion!r}; expected one of {PROMOTION_KINDS}"
            )
        # The keyword knobs are sugar over one IndexConfig; resolution also
        # validates them (unknown curve kinds raise here).
        config = resolve_index_config(
            self.config,
            epsilon=self.epsilon,
            backend=self.backend,
            shards=self.shards,
            cube_budget=self.cube_budget,
            run_budget=self.run_budget,
            curve=self.curve,
        )
        self.config = config
        self.epsilon = config.epsilon
        self.backend = config.backend
        self.shards = config.shards
        self.cube_budget = config.cube_budget
        self.run_budget = config.run_budget
        self.curve = config.curve
        self.routing_table = self._fresh_routing_table()
        if self.profile_cache is None:
            profiler = (
                CoveringProfiler(
                    self.schema.num_attributes,
                    self.schema.order,
                    config=config,
                )
                if self.covering == "approximate"
                else None
            )
            self.profile_cache = ProfileCache(profiler)
        self._store = SubscriptionStore(self.profile_cache)
        self._neighbors: List[Hashable] = []
        self._forwarded: Dict[Hashable, CoveringStrategy] = {}
        # Per neighbour: the subscriptions actually sent on the link, keyed by
        # id.  The objects (not just ids) are kept so a link can be re-synced
        # after the neighbour loses state (crash recovery).
        self._forwarded_ids: Dict[Hashable, Dict[Hashable, Subscription]] = {}
        self._suppressed: Dict[Hashable, Dict[Hashable, Subscription]] = {}
        # Per neighbour: which forwarded subscription each suppressed one was
        # last found covered by, plus the reverse map.  The incremental
        # promotion engine pops the withdrawn cover's dependants instead of
        # re-checking the whole suppressed set.  Inner dicts preserve
        # insertion order so promotion re-checks run deterministically.
        self._cover_of: Dict[Hashable, Dict[Hashable, Hashable]] = {}
        self._dependents: Dict[Hashable, Dict[Hashable, Dict[Hashable, None]]] = {}
        self._local_subscribers: Dict[Hashable, List[Subscription]] = {}
        self._decision_log: List[ForwardDecision] = []
        self._in_batch = False
        # Set by the network: called as send_subscription(from, to, subscription)
        self._send_subscription: Optional[Callable[[Hashable, Hashable, Subscription], None]] = None
        self._send_unsubscription: Optional[Callable[[Hashable, Hashable, Hashable], None]] = None
        self._send_event: Optional[Callable[[Hashable, Hashable, Event], None]] = None
        self._deliver: Optional[Callable[[Hashable, Hashable, Event], None]] = None

    # ------------------------------------------------------------------ wiring
    def _fresh_routing_table(self) -> RoutingTable:
        """Build an empty routing table from this broker's configuration."""
        return RoutingTable(
            schema=self.schema,
            matching=self.matching,
            seed=self.seed,
            config=self.config,
        )

    def _fresh_link_state(self, neighbor_id: Hashable) -> None:
        """(Re)initialise the per-link covering strategy and bookkeeping."""
        self._forwarded[neighbor_id] = make_covering_strategy(
            self.covering,
            self.schema,
            samples=self.samples,
            seed=self.seed,
            config=self.config,
        )
        self._forwarded_ids[neighbor_id] = {}
        self._suppressed[neighbor_id] = {}
        self._cover_of[neighbor_id] = {}
        self._dependents[neighbor_id] = {}

    def connect(self, neighbor_id: Hashable) -> None:
        """Register a neighbouring broker (called by the network while building the topology)."""
        if neighbor_id not in self._neighbors:
            self._neighbors.append(neighbor_id)
            self._fresh_link_state(neighbor_id)

    def attach_transport(
        self,
        send_subscription: Callable[[Hashable, Hashable, Subscription], None],
        send_event: Callable[[Hashable, Hashable, Event], None],
        deliver: Callable[[Hashable, Hashable, Event], None],
        send_unsubscription: Optional[Callable[[Hashable, Hashable, Hashable], None]] = None,
    ) -> None:
        """Attach the network's transport callbacks."""
        self._send_subscription = send_subscription
        self._send_unsubscription = send_unsubscription
        self._send_event = send_event
        self._deliver = deliver

    @property
    def neighbors(self) -> List[Hashable]:
        return list(self._neighbors)

    @property
    def decision_log(self) -> List[ForwardDecision]:
        return list(self._decision_log)

    # ----------------------------------------------------------- subscriptions
    def subscribe_local(self, client_id: Hashable, subscription: Subscription) -> None:
        """Register a subscription from a locally attached client and propagate it."""
        self._local_subscribers.setdefault(client_id, []).append(subscription)
        self.receive_subscription(LOCAL_INTERFACE, subscription)

    def subscribe_batch(self, items: Sequence[Tuple[Hashable, Subscription]]) -> None:
        """Register a batch of ``(client_id, subscription)`` pairs and propagate them.

        Equivalent to calling :meth:`subscribe_local` per pair — per-link
        processing order, forwarding decisions and message sequences are
        identical — but the per-subscription profile work is amortised over
        the batch and the per-link covering state stays hot while the batch
        sweeps each neighbour.
        """
        for client_id, subscription in items:
            self._local_subscribers.setdefault(client_id, []).append(subscription)
        self.receive_subscription_batch(LOCAL_INTERFACE, [sub for _, sub in items])

    def receive_subscription(self, from_interface: Hashable, subscription: Subscription) -> None:
        """Handle a subscription arriving from ``from_interface`` (neighbour or local client)."""
        self.stats.subscriptions_received += 1
        profile = self._store_subscription(from_interface, subscription)
        for neighbor_id in self._neighbors:
            if neighbor_id == from_interface:
                continue
            self._consider_forwarding(neighbor_id, subscription, profile)

    def receive_subscription_batch(
        self, from_interface: Hashable, subscriptions: Sequence[Subscription]
    ) -> None:
        """Handle a batch of subscriptions arriving together on one interface.

        All subscriptions are stored (and profiled) first, then each outgoing
        link is swept once.  Per link the subscriptions are considered in
        batch order, so the covering decisions — including intra-batch
        suppression of later subscriptions by earlier ones — are exactly
        those of sequential arrival.
        """
        self._in_batch = True
        try:
            entries: List[Tuple[Subscription, Optional[SubscriptionProfile]]] = []
            for subscription in subscriptions:
                self.stats.subscriptions_received += 1
                entries.append(
                    (subscription, self._store_subscription(from_interface, subscription))
                )
            for neighbor_id in self._neighbors:
                if neighbor_id == from_interface:
                    continue
                for subscription, profile in entries:
                    self._consider_forwarding(neighbor_id, subscription, profile)
        finally:
            self._in_batch = False

    def _store_subscription(
        self, from_interface: Hashable, subscription: Subscription
    ) -> Optional[SubscriptionProfile]:
        """Store an arrival in the interface table; return its shared profile."""
        table = self.routing_table.table(from_interface)
        already_stored = subscription.sub_id in table
        table.add(subscription)
        if not already_stored:
            self.stats.subscriptions_stored += 1
            if self.profile_sharing:
                return self._store.acquire(subscription)
        return self._store.get(subscription.sub_id) if self.profile_sharing else None

    @profiled("broker.covering_check")
    def _covering_check(
        self,
        strategy: CoveringStrategy,
        subscription: Subscription,
        profile: Optional[SubscriptionProfile],
    ) -> Optional[Hashable]:
        """One covering query against a link's forwarded set, with accounting."""
        self.stats.covering_checks += 1
        if self._in_batch:
            self.stats.batch_covering_checks += 1
        before = strategy.work_units()
        if profile is not None:
            covered_by = strategy.find_covering_profile(profile)
        else:
            covered_by = strategy.find_covering(subscription.ranges)
        self.stats.covering_check_runs += strategy.work_units() - before
        return covered_by

    def _record_suppression(
        self, neighbor_id: Hashable, subscription: Subscription, covered_by: Hashable
    ) -> None:
        """Mark a subscription suppressed on a link and index it under its cover."""
        sub_id = subscription.sub_id
        suppressed = self._suppressed[neighbor_id]
        if sub_id not in suppressed:
            self.stats.subscriptions_suppressed += 1
        else:
            previous = self._cover_of[neighbor_id].get(sub_id)
            if previous is not None and previous != covered_by:
                dependents = self._dependents[neighbor_id].get(previous)
                if dependents is not None:
                    dependents.pop(sub_id, None)
                    if not dependents:
                        del self._dependents[neighbor_id][previous]
        suppressed[sub_id] = subscription
        self._cover_of[neighbor_id][sub_id] = covered_by
        self._dependents[neighbor_id].setdefault(covered_by, {})[sub_id] = None

    def _clear_suppression(self, neighbor_id: Hashable, sub_id: Hashable) -> None:
        """Forget a link's suppression entry and its cover bookkeeping."""
        self._suppressed[neighbor_id].pop(sub_id, None)
        cover = self._cover_of[neighbor_id].pop(sub_id, None)
        if cover is not None:
            dependents = self._dependents[neighbor_id].get(cover)
            if dependents is not None:
                dependents.pop(sub_id, None)
                if not dependents:
                    del self._dependents[neighbor_id][cover]

    def _install_forward(
        self,
        neighbor_id: Hashable,
        strategy: CoveringStrategy,
        subscription: Subscription,
        profile: Optional[SubscriptionProfile],
    ) -> None:
        """Add a subscription to a link's forwarded set and send it."""
        if profile is not None:
            strategy.add_profile(subscription.sub_id, profile)
        else:
            strategy.add(subscription.sub_id, subscription.ranges)
        self._forwarded_ids[neighbor_id][subscription.sub_id] = subscription
        self.stats.subscriptions_forwarded += 1
        self._decision_log.append(ForwardDecision(subscription.sub_id, neighbor_id, True, None))
        if self._send_subscription is None:
            raise RuntimeError(
                f"broker {self.broker_id} has no transport attached; "
                "add it to a BrokerNetwork before sending subscriptions"
            )
        self._send_subscription(self.broker_id, neighbor_id, subscription)

    def _consider_forwarding(
        self,
        neighbor_id: Hashable,
        subscription: Subscription,
        profile: Optional[SubscriptionProfile] = None,
    ) -> None:
        if subscription.sub_id in self._forwarded_ids[neighbor_id]:
            # Duplicate arrival of a subscription already forwarded on this
            # link: re-adding it to the strategy and re-sending it would
            # double-count state downstream and leave a ghost entry behind
            # after a single withdrawal.
            return
        strategy = self._forwarded[neighbor_id]
        covered_by = self._covering_check(strategy, subscription, profile)
        if self.trace is not None:
            self.trace.record(
                Span(
                    trace_id=self.trace.trace_id_for("sub", subscription.sub_id),
                    kind="covering",
                    name=str(subscription.sub_id),
                    broker_id=self.broker_id,
                    parent=neighbor_id,
                    start=self.trace.now(),
                    detail=make_detail(
                        decision="suppressed" if covered_by is not None else "forwarded",
                        covered_by=str(covered_by) if covered_by is not None else "",
                    ),
                )
            )
        if covered_by is not None:
            self._record_suppression(neighbor_id, subscription, covered_by)
            self._decision_log.append(
                ForwardDecision(subscription.sub_id, neighbor_id, False, covered_by)
            )
            return
        # A duplicate arrival of a previously *suppressed* subscription can
        # reach this point when the (approximate) covering check misses the
        # cover it found the first time.  Forwarding is then correct, but the
        # pending entry must go, or a later withdrawal would take the
        # suppressed early-exit and leave a ghost entry in the strategy.
        self._clear_suppression(neighbor_id, subscription.sub_id)
        self._install_forward(neighbor_id, strategy, subscription, profile)

    def has_forwarded(self, neighbor_id: Hashable, sub_id: Hashable) -> bool:
        """Return True when ``sub_id`` was forwarded to ``neighbor_id`` (test helper)."""
        return sub_id in self._forwarded_ids.get(neighbor_id, {})

    # ------------------------------------------------------------------- churn
    def reset_routing_state(self) -> None:
        """Forget all learnt routing and covering state (crash recovery).

        Locally attached clients, neighbour links and cumulative stats
        survive; everything learnt from the network — interface tables,
        per-link covering strategies, forwarded/suppressed bookkeeping — is
        rebuilt from scratch because messages lost while the broker was down
        make the old state untrustworthy.
        """
        self.routing_table = self._fresh_routing_table()
        self._store.clear()
        for neighbor_id in self._neighbors:
            self._fresh_link_state(neighbor_id)

    def flush_interface(self, neighbor_id: Hashable) -> int:
        """Withdraw everything previously forwarded on this link (pre-reset).

        Used by crash recovery as the first half of flush-and-refill: the
        recovering broker cannot know which of its pre-crash forwards are
        still valid (an unsubscription may have been dropped while it was
        down), so it retracts them all; the re-announcement and neighbour
        resyncs that follow re-add every live one.  Per-link FIFO ordering in
        the transport makes the retract-then-re-add sequence converge.  Local
        state is left untouched — the caller resets it wholesale next.
        Returns the number of withdrawals sent.
        """
        if neighbor_id not in self._forwarded_ids:
            raise ValueError(f"{neighbor_id!r} is not a neighbour of broker {self.broker_id!r}")
        if self._send_unsubscription is None:
            return 0
        flushed = 0
        for sub_id in self._forwarded_ids[neighbor_id]:
            self._send_unsubscription(self.broker_id, neighbor_id, sub_id)
            flushed += 1
        return flushed

    def resync_interface(self, neighbor_id: Hashable) -> int:
        """Replay every subscription forwarded on this link (neighbour lost state).

        Only the *forwarded* set is replayed: a subscription this broker
        suppressed on the link is covered by one it did forward, so the
        neighbour's rebuilt routing state still attracts every event the
        suppressed subscriber needs — the covering optimisation carries over
        to recovery traffic.  Returns the number of subscriptions re-sent.
        """
        if neighbor_id not in self._forwarded_ids:
            raise ValueError(f"{neighbor_id!r} is not a neighbour of broker {self.broker_id!r}")
        if self._send_subscription is None:
            raise RuntimeError(
                f"broker {self.broker_id} has no transport attached; "
                "add it to a BrokerNetwork before resyncing"
            )
        resent = 0
        for subscription in self._forwarded_ids[neighbor_id].values():
            self._send_subscription(self.broker_id, neighbor_id, subscription)
            resent += 1
        self.stats.subscriptions_resynced += resent
        return resent

    def announce_interface(self, neighbor_id: Hashable) -> int:
        """Run the forwarding decision toward a newly attached neighbour.

        Every subscription currently known (from any other interface,
        including local clients) is considered for forwarding on the new link
        with the usual covering check, so a broker joining mid-run attracts
        the events its side of the overlay needs.  Returns the number of
        subscriptions considered.
        """
        if neighbor_id not in self._forwarded_ids:
            raise ValueError(f"{neighbor_id!r} is not a neighbour of broker {self.broker_id!r}")
        seen: Set[Hashable] = set()
        for interface_id in list(self.routing_table.interfaces()):
            if interface_id == neighbor_id:
                continue
            for subscription in self.routing_table.table(interface_id).subscriptions():
                if subscription.sub_id in seen:
                    continue
                seen.add(subscription.sub_id)
                profile = (
                    self._store.get(subscription.sub_id) if self.profile_sharing else None
                )
                self._consider_forwarding(neighbor_id, subscription, profile)
        return len(seen)

    # --------------------------------------------------------- unsubscriptions
    def unsubscribe_local(self, client_id: Hashable, sub_id: Hashable) -> bool:
        """Remove a locally registered subscription and propagate its withdrawal.

        Returns True when the subscription was found.  Withdrawal is the
        delicate part of covering-based propagation: if the withdrawn
        subscription had been covering others on some link, those others must
        now be (re)forwarded there or downstream brokers would stop routing
        the events they still need.
        """
        subscriptions = self._local_subscribers.get(client_id, [])
        for subscription in subscriptions:
            if subscription.sub_id == sub_id:
                subscriptions.remove(subscription)
                self.receive_unsubscription(LOCAL_INTERFACE, sub_id)
                return True
        return False

    def unsubscribe_batch(self, items: Sequence[Tuple[Hashable, Hashable]]) -> List[bool]:
        """Withdraw a batch of ``(client_id, sub_id)`` pairs in one pass.

        Per-link withdrawal order and promotion decisions are identical to
        calling :meth:`unsubscribe_local` per pair; the per-link sweep keeps
        each link's covering state hot and the promotion engine amortises its
        profile lookups.  Returns one found-flag per pair.
        """
        removed_flags: List[bool] = []
        to_withdraw: List[Hashable] = []
        for client_id, sub_id in items:
            subscriptions = self._local_subscribers.get(client_id, [])
            found = next((s for s in subscriptions if s.sub_id == sub_id), None)
            if found is not None:
                subscriptions.remove(found)
                to_withdraw.append(sub_id)
                removed_flags.append(True)
            else:
                removed_flags.append(False)
        self.receive_unsubscription_batch(LOCAL_INTERFACE, to_withdraw)
        return removed_flags

    def receive_unsubscription(self, from_interface: Hashable, sub_id: Hashable) -> None:
        """Handle the withdrawal of ``sub_id`` announced on ``from_interface``."""
        removed = self.routing_table.table(from_interface).remove(sub_id)
        for neighbor_id in self._neighbors:
            if neighbor_id == from_interface:
                continue
            self._withdraw_from_neighbor(neighbor_id, sub_id)
        if removed and self.profile_sharing:
            self._store.release(sub_id)

    def receive_unsubscription_batch(
        self, from_interface: Hashable, sub_ids: Sequence[Hashable]
    ) -> None:
        """Handle a batch of withdrawals arriving together on one interface.

        All ids leave the interface table first, then each outgoing link is
        swept once; per link the withdrawals (and their promotions) run in
        batch order, matching sequential arrival exactly.
        """
        self._in_batch = True
        try:
            table = self.routing_table.table(from_interface)
            removed = [sub_id for sub_id in sub_ids if table.remove(sub_id)]
            for neighbor_id in self._neighbors:
                if neighbor_id == from_interface:
                    continue
                for sub_id in sub_ids:
                    self._withdraw_from_neighbor(neighbor_id, sub_id)
            if self.profile_sharing:
                for sub_id in removed:
                    self._store.release(sub_id)
        finally:
            self._in_batch = False

    def _withdraw_from_neighbor(self, neighbor_id: Hashable, sub_id: Hashable) -> None:
        suppressed = self._suppressed[neighbor_id]
        if sub_id in suppressed:
            # Never forwarded there in the first place: just forget it.
            self._clear_suppression(neighbor_id, sub_id)
            return
        if sub_id not in self._forwarded_ids[neighbor_id]:
            return
        strategy = self._forwarded[neighbor_id]
        strategy.remove(sub_id)
        self._forwarded_ids[neighbor_id].pop(sub_id, None)
        if self._send_unsubscription is not None:
            self._send_unsubscription(self.broker_id, neighbor_id, sub_id)
        # Subscriptions previously suppressed on this link may have lost their
        # cover; re-run the forwarding decision so downstream brokers keep
        # receiving the events those subscribers still need.  The incremental
        # engine re-checks only the withdrawn subscription's recorded
        # dependants — any other suppressed subscription still has its
        # recorded cover in the forwarded set, so its suppression stays sound.
        if self.promotion == "incremental":
            dependents = self._dependents[neighbor_id].pop(sub_id, None)
            if not dependents:
                return
            candidates = [
                (pending_id, suppressed[pending_id])
                for pending_id in dependents
                if pending_id in suppressed
            ]
        else:
            candidates = list(suppressed.items())
        for pending_id, pending in candidates:
            if pending_id not in suppressed:
                # Promoted earlier in this very pass (it covered a later
                # candidate's re-check instead).
                continue
            profile = self._store.get(pending_id) if self.profile_sharing else None
            covered_by = self._covering_check(strategy, pending, profile)
            if covered_by is not None:
                # Still covered — by a different survivor; re-home it so the
                # dependants map stays exact.
                self._record_suppression(neighbor_id, pending, covered_by)
                continue
            self._clear_suppression(neighbor_id, pending_id)
            self._install_forward(neighbor_id, strategy, pending, profile)
            self.stats.promotions += 1

    # ------------------------------------------------------------------ events
    def publish_local(self, event: Event) -> None:
        """Inject an event published by a locally attached client."""
        self.receive_event(LOCAL_INTERFACE, event)

    def publish_batch(self, events: Sequence[Event]) -> None:
        """Inject a batch of locally published events.

        Under SFC matching the events' curve keys are computed in one pass
        (sharing per-coordinate spreading work across the batch) and threaded
        through routing, so each key is built once instead of once per
        interface probe.
        """
        for _ in self.publish_batch_iter(events):
            pass

    def publish_batch_iter(self, events: Sequence[Event]):
        """Like :meth:`publish_batch`, yielding each event after it is routed.

        Lets callers (the network's delivery-tracking wrapper) observe
        per-event boundaries while sharing the amortised key computation.
        """
        events = list(events)
        keys = self.routing_table.event_keys(events)
        for event, key in zip(events, keys):
            self.receive_event(LOCAL_INTERFACE, event, key=key)
            yield event

    def receive_event(
        self, from_interface: Hashable, event: Event, key: Optional[int] = None
    ) -> None:
        """Deliver an event locally and forward it along matching interfaces.

        ``key`` optionally carries the event's precomputed SFC key (from
        :meth:`publish_batch`); when absent and SFC matching is active the key
        is computed once here and shared across all interface probes.
        """
        self.stats.events_received += 1
        delivered = self._deliver_locally(event)
        if key is None:
            key = self.routing_table.event_key(event)
        # Probe only neighbour tables: the local-client table is handled by
        # _deliver_locally above, so matching it here would be wasted work.
        forwarded_to: List[Hashable] = []
        for interface_id in self.routing_table.matching_interfaces(
            event, exclude=from_interface, key=key, among=self._neighbors
        ):
            self.stats.events_forwarded += 1
            if self._send_event is None:
                raise RuntimeError(
                    f"broker {self.broker_id} has no transport attached; "
                    "add it to a BrokerNetwork before publishing events"
                )
            forwarded_to.append(interface_id)
            self._send_event(self.broker_id, interface_id, event)
        if self.trace is not None:
            self.trace.record(
                Span(
                    trace_id=self.trace.trace_id_for("evt", event.event_id),
                    kind="route",
                    name=str(event.event_id),
                    broker_id=self.broker_id,
                    parent=from_interface,
                    start=self.trace.now(),
                    detail=make_detail(
                        delivered=delivered,
                        forwarded_to=tuple(str(i) for i in forwarded_to),
                    ),
                )
            )

    def sync_match_stats(self) -> None:
        """Pull the match-index work counters into :attr:`stats`.

        The counters are running totals held by the per-interface indexes;
        aggregating them per event would cost an interface sweep on the hot
        path, so callers (stats collection, tests) sync on read instead.
        """
        (
            self.stats.match_index_lookups,
            self.stats.match_index_candidates,
            self.stats.match_index_false_positives,
        ) = self.routing_table.match_work()

    def _deliver_locally(self, event: Event) -> int:
        delivered = 0
        for client_id, subscriptions in self._local_subscribers.items():
            for subscription in subscriptions:
                self.stats.match_tests += 1
                if subscription.matches(event):
                    self.stats.events_delivered_locally += 1
                    delivered += 1
                    if self._deliver is not None:
                        self._deliver(client_id, subscription.sub_id, event)
                    break  # one delivery per client per event
        return delivered

    # -------------------------------------------------------------- accounting
    def routing_state(self) -> Dict[str, Dict[str, List[str]]]:
        """Normalised dump of this broker's learnt routing/covering state.

        Interface and subscription identifiers are stringified and sorted so
        dumps from two runs (different transports, batch vs sequential APIs)
        compare with ``==`` regardless of dict iteration history.  Used by
        the equivalence tests and the benchmark smoke check.
        """
        tables = {
            str(interface_id): sorted(
                str(sub.sub_id)
                for sub in self.routing_table.table(interface_id).subscriptions()
            )
            for interface_id in list(self.routing_table.interfaces())
        }
        # Empty entries are dropped: an interface table (or link set) that was
        # created and later drained must compare equal to one never touched.
        return {
            "tables": {iface: subs for iface, subs in tables.items() if subs},
            "forwarded": {
                str(neighbor_id): sorted(str(sub_id) for sub_id in forwarded)
                for neighbor_id, forwarded in self._forwarded_ids.items()
                if forwarded
            },
            "suppressed": {
                str(neighbor_id): sorted(str(sub_id) for sub_id in suppressed)
                for neighbor_id, suppressed in self._suppressed.items()
                if suppressed
            },
        }

    def routing_table_size(self) -> int:
        """Total subscription entries stored in this broker's routing table."""
        return self.routing_table.total_entries()

    def local_subscriptions(self) -> List[Tuple[Hashable, Subscription]]:
        """Return ``(client_id, subscription)`` pairs registered locally."""
        return [
            (client_id, sub)
            for client_id, subs in self._local_subscribers.items()
            for sub in subs
        ]
